package core

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// This file implements the binary operators (Defs. 7–10): Cartesian
// product, multiset union and difference, and join, each combining the
// current spreadsheet with a stored spreadsheet.
//
// Every binary operator is a point of non-commutativity (Sec. IV-B): the
// current selections, DE, and projections are folded into a freshly
// materialised base relation and leave the rewritable query state. Grouping
// and ordering of the current spreadsheet survive, and computed-column
// definitions carry over and recompute against the new base ("all computed
// columns are updated such that computation is based on the product").

// materialize evaluates the spreadsheet and returns its surviving rows over
// the visible non-computed columns — the relation R^j that binary operators
// consume. Computed-column definitions are returned separately so the
// caller can graft them onto the result.
func (s *Spreadsheet) materialize() (*relation.Relation, error) {
	res, err := s.Evaluate()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, c := range s.base.Schema {
		if !s.state.isHidden(c.Name) {
			names = append(names, c.Name)
		}
	}
	out, err := res.Table.Project(names)
	if err != nil {
		return nil, err
	}
	out.Name = s.name
	return out, nil
}

// carryComputed validates that every computed definition still resolves
// against the new base plus the already-carried computed columns.
func carryComputed(newBase *relation.Relation, computed []*ComputedColumn) error {
	known := func(name string) bool {
		if newBase.Schema.Has(name) {
			return true
		}
		for _, c := range computed {
			if strings.EqualFold(c.Name, name) {
				return true
			}
		}
		return false
	}
	for _, c := range computed {
		switch c.Kind {
		case KindAggregate:
			if !known(c.Input) {
				return fmt.Errorf("core: computed column %s aggregates %q, which the result does not carry; remove it first", c.Name, c.Input)
			}
		case KindWindow:
			for _, ref := range c.Win.columns() {
				if !known(ref) {
					return fmt.Errorf("core: computed column %s references %q, which the result does not carry; remove it first", c.Name, ref)
				}
			}
		default:
			for _, ref := range expr.Columns(c.Formula) {
				if !known(ref) {
					return fmt.Errorf("core: computed column %s references %q, which the result does not carry; remove it first", c.Name, ref)
				}
			}
		}
	}
	return nil
}

// rebase installs the new base relation after a binary operator, folding
// history (point of non-commutativity) while keeping grouping, ordering and
// computed definitions.
func (s *Spreadsheet) rebase(newBase *relation.Relation, entry string) error {
	if err := carryComputed(newBase, s.state.computed); err != nil {
		return err
	}
	// Grouping/ordering attributes must still exist in the result.
	for _, g := range s.state.grouping {
		for _, a := range g.Rel {
			if !newBase.Schema.Has(a) && s.state.findComputed(a) == nil {
				return fmt.Errorf("core: grouping attribute %q is not carried by the result", a)
			}
		}
	}
	for _, k := range s.state.finest {
		if !newBase.Schema.Has(k.Column) && s.state.findComputed(k.Column) == nil {
			return fmt.Errorf("core: ordering attribute %q is not carried by the result", k.Column)
		}
	}
	before := s.begin()
	s.base = newBase
	s.state.selections = nil
	s.state.hidden = nil
	s.state.distinctOn = nil
	s.commit(before, entry)
	return nil
}

// Product computes S × S_s (Def. 7): the relational product of the two
// materialised relations, presented with the current spreadsheet's grouping
// and ordering. The operator is deliberately asymmetric, as in the paper.
func (s *Spreadsheet) Product(stored *Spreadsheet) error {
	left, err := s.materialize()
	if err != nil {
		return err
	}
	right, err := stored.materialize()
	if err != nil {
		return err
	}
	prod := left.Product(right)
	prod.Name = s.name
	return s.rebase(prod, "× "+stored.Name())
}

// Union computes S ∪ S_s (Def. 8) under multiset semantics; the stored
// spreadsheet must be union-compatible on the visible non-computed columns.
func (s *Spreadsheet) Union(stored *Spreadsheet) error {
	left, err := s.materialize()
	if err != nil {
		return err
	}
	right, err := stored.materialize()
	if err != nil {
		return err
	}
	u, err := left.Union(right)
	if err != nil {
		return err
	}
	u.Name = s.name
	return s.rebase(u, "∪ "+stored.Name())
}

// Difference computes S − S_s (Def. 9) under multiset semantics
// ({t,t} − {t} = {t}).
func (s *Spreadsheet) Difference(stored *Spreadsheet) error {
	left, err := s.materialize()
	if err != nil {
		return err
	}
	right, err := stored.materialize()
	if err != nil {
		return err
	}
	d, err := left.Difference(right)
	if err != nil {
		return err
	}
	d.Name = s.name
	return s.rebase(d, "− "+stored.Name())
}

// Join computes S ⋈_F S_s (Def. 10) with any predicate the expression
// language supports. Column-name collisions on the stored side are
// disambiguated with its name as a prefix, so conditions reference e.g.
// "orders.o_custkey". An empty condition degenerates to Product.
//
// When the condition carries conjunctive cross-relation column equalities
// (`a = b` with a from the current sheet and b from the stored one), the
// join runs through the equi-hash-join kernel — only hash-matching
// candidate pairs reach the full predicate. Genuinely theta conditions fall
// back to the pair scan.
func (s *Spreadsheet) Join(stored *Spreadsheet, condition string) error {
	if strings.TrimSpace(condition) == "" {
		return s.Product(stored)
	}
	e, err := expr.Parse(condition)
	if err != nil {
		return err
	}
	left, err := s.materialize()
	if err != nil {
		return err
	}
	right, err := stored.materialize()
	if err != nil {
		return err
	}
	// Validate the condition against the product schema before joining, so
	// invalid conditions are "reported to the user immediately" (Sec. VI-A).
	// An empty product of the two schemas gives the layout without
	// materialising a single row.
	probe := relation.New(left.Name, left.Schema).Product(relation.New(right.Name, right.Schema))
	kind, err := expr.Check(e, func(name string) (value.Kind, bool) {
		if i := probe.Schema.IndexOf(name); i >= 0 {
			return probe.Schema[i].Kind, true
		}
		return value.KindNull, false
	})
	if err != nil {
		return fmt.Errorf("core: join condition: %w", err)
	}
	if kind != value.KindBool && kind != value.KindNull {
		return fmt.Errorf("core: join condition must be boolean, got %s", kind)
	}
	prog, progErr := expr.Compile(e, schemaResolver(probe.Schema))
	on := func(t relation.Tuple) (bool, error) {
		if progErr == nil {
			return prog.EvalBool(t)
		}
		return expr.EvalBool(e, rowEnv{schema: probe.Schema, row: t})
	}
	var j *relation.Relation
	if lcols, rcols := equiPairs(e, probe.Schema, len(left.Schema)); len(lcols) > 0 {
		j, err = left.HashJoin(right, lcols, rcols, on)
	} else {
		j, err = left.Join(right, on)
	}
	if err != nil {
		return err
	}
	j.Name = s.name
	return s.rebase(j, "⋈ "+stored.Name()+" ON "+e.SQL())
}

// equiPairs extracts the cross-relation column-equality conjuncts of a join
// condition over the product schema: top-level AND-connected `a = b` where
// one column lies left of split and the other at or right of it. Returned
// right positions are relative to the right relation. A predicate that is
// true implies every returned pair compares equal, which is what lets the
// hash kernel prune non-matching pairs safely.
func equiPairs(e expr.Expr, schema relation.Schema, split int) (lcols, rcols []int) {
	var visit func(expr.Expr)
	visit = func(n expr.Expr) {
		b, ok := n.(*expr.Binary)
		if !ok {
			return
		}
		switch b.Op {
		case expr.OpAnd:
			visit(b.L)
			visit(b.R)
		case expr.OpEq:
			lc, lok := b.L.(*expr.ColumnRef)
			rc, rok := b.R.(*expr.ColumnRef)
			if !lok || !rok {
				return
			}
			li, ri := schema.IndexOf(lc.Name), schema.IndexOf(rc.Name)
			switch {
			case li < 0 || ri < 0:
			case li < split && ri >= split:
				lcols = append(lcols, li)
				rcols = append(rcols, ri-split)
			case ri < split && li >= split:
				lcols = append(lcols, ri)
				rcols = append(rcols, li-split)
			}
		}
	}
	visit(e)
	return lcols, rcols
}
