package core

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/value"
)

// This file implements Sec. V: query modification through the query state.
// Because the unary operators commute (Theorem 2), replacing or deleting
// one stored operator instance and re-evaluating is equivalent to rewriting
// the entire operation history (Theorem 3).

// ReplaceSelection swaps the predicate of an existing σ instance, the
// paper's motivating "change Year = 2005 to Year = 2006" interaction
// (Tables IV → V). The rest of the state is untouched.
func (s *Spreadsheet) ReplaceSelection(id int, predicate string) error {
	e, err := expr.Parse(predicate)
	if err != nil {
		return err
	}
	kind, err := expr.Check(e, s.columnKind)
	if err != nil {
		return err
	}
	if kind != value.KindBool && kind != value.KindNull {
		return fmt.Errorf("core: selection predicate must be boolean, got %s", kind)
	}
	if expr.ContainsAggregate(e) {
		return fmt.Errorf("core: aggregates are created with Aggregate, not inline in predicates")
	}
	if expr.ContainsWindow(e) {
		return fmt.Errorf("core: window functions are created with Window, not inline in predicates")
	}
	for i, sel := range s.state.selections {
		if sel.ID == id {
			// The earlier of the old and new predicate's σ stages is the
			// first whose fingerprint changes.
			rank := min(s.selRank(sel.Pred), s.selRank(e))
			before := s.begin()
			old := s.state.selections[i].Pred.SQL()
			s.state.selections[i].Pred = e
			s.commit(before, fmt.Sprintf("modify σ#%d %s → %s", id, old, e.SQL()))
			s.invalidateAtoms(rank, fmt.Sprintf("sel:%d", id))
			return nil
		}
	}
	return fmt.Errorf("core: no selection #%d", id)
}

// RemoveSelection deletes a σ instance from history entirely.
func (s *Spreadsheet) RemoveSelection(id int) error {
	for i, sel := range s.state.selections {
		if sel.ID == id {
			rank := s.selRank(sel.Pred)
			before := s.begin()
			s.state.selections = append(s.state.selections[:i:i], s.state.selections[i+1:]...)
			s.commit(before, fmt.Sprintf("remove σ#%d %s", id, sel.Pred.SQL()))
			s.invalidateAtoms(rank, fmt.Sprintf("sel:%d", id))
			return nil
		}
	}
	return fmt.Errorf("core: no selection #%d", id)
}

// dependents lists everything that requires the named column: selections,
// computed columns, grouping bases, ordering keys, and the DE record. The
// paper: "we can remove an aggregate column, provided that no operator
// depends on it".
func (s *Spreadsheet) dependents(col string) []string {
	var out []string
	for _, sel := range s.state.selections {
		if expr.References(sel.Pred, col) {
			out = append(out, fmt.Sprintf("selection #%d (%s)", sel.ID, sel.Pred.SQL()))
		}
	}
	for _, c := range s.state.computed {
		if strings.EqualFold(c.Name, col) {
			continue
		}
		if c.dependsOn(col) {
			out = append(out, "computed column "+c.Name)
		}
	}
	for li, g := range s.state.grouping {
		for _, a := range g.Rel {
			if strings.EqualFold(a, col) {
				out = append(out, fmt.Sprintf("grouping level %d", li+2))
			}
		}
		if strings.EqualFold(g.By, col) {
			out = append(out, fmt.Sprintf("group ordering at level %d", li+1))
		}
	}
	for _, k := range s.state.finest {
		if strings.EqualFold(k.Column, col) {
			out = append(out, "ordering key "+k.Column)
		}
	}
	return out
}

// RemoveComputed deletes an η or θ column definition. It fails while other
// operators depend on the column; remove the dependents first (Sec. V-B).
func (s *Spreadsheet) RemoveComputed(name string) error {
	idx := -1
	for i, c := range s.state.computed {
		if strings.EqualFold(c.Name, name) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: no computed column %q", name)
	}
	if deps := s.dependents(name); len(deps) > 0 {
		return fmt.Errorf("core: cannot remove %q: depended on by %s", name, strings.Join(deps, "; "))
	}
	// Resolve the column's stage rank while its definition is still in the
	// state (the depth computation needs it).
	rank := s.computedRank(s.state.computed[idx])
	before := s.begin()
	s.state.computed = append(s.state.computed[:idx:idx], s.state.computed[idx+1:]...)
	s.commit(before, "remove column "+name)
	s.invalidateAtoms(rank, "col:"+strings.ToLower(name))
	return nil
}

// Ungroup removes the finest grouping level (level = levelCount), refusing
// while aggregates depend on it. The level's relative basis does not return
// to the finest ordering automatically; the user orders explicitly.
func (s *Spreadsheet) Ungroup() error {
	if len(s.state.grouping) == 0 {
		return fmt.Errorf("core: spreadsheet is not grouped")
	}
	level := s.state.levelCount()
	for _, c := range s.state.computed {
		if c.Kind == KindAggregate && c.Level >= level {
			return fmt.Errorf("core: aggregate %q depends on grouping level %d; remove it first", c.Name, c.Level)
		}
	}
	before := s.begin()
	s.state.grouping = s.state.grouping[:len(s.state.grouping)-1]
	s.commit(before, fmt.Sprintf("ungroup level %d", level))
	s.invalidateAtoms(rankAgg(1), "order")
	return nil
}

// ClearGrouping removes every grouping level (the interface's "destroy the
// current grouping and use this new one instead" path), refusing while any
// aggregate depends on a level above the root.
func (s *Spreadsheet) ClearGrouping() error {
	if len(s.state.grouping) == 0 {
		return nil
	}
	for _, c := range s.state.computed {
		if c.Kind == KindAggregate && c.Level > 1 {
			return fmt.Errorf("core: aggregate %q depends on grouping level %d; remove it first", c.Name, c.Level)
		}
	}
	before := s.begin()
	s.state.grouping = nil
	s.commit(before, "clear grouping")
	s.invalidateAtoms(rankAgg(1), "order")
	return nil
}

// RemoveOrdering drops the finest-level sort key on the given column.
func (s *Spreadsheet) RemoveOrdering(column string) error {
	for i, k := range s.state.finest {
		if strings.EqualFold(k.Column, column) {
			before := s.begin()
			s.state.finest = append(s.state.finest[:i:i], s.state.finest[i+1:]...)
			s.commit(before, "remove ordering "+column)
			s.invalidateAtoms(rankOrder, "order")
			return nil
		}
	}
	return fmt.Errorf("core: no finest-level ordering on %q", column)
}

// RemoveDistinct cancels a previously applied δ.
func (s *Spreadsheet) RemoveDistinct() error {
	if s.state.distinctOn == nil {
		return fmt.Errorf("core: duplicate elimination is not active")
	}
	before := s.begin()
	s.state.distinctOn = nil
	s.commit(before, "remove distinct")
	s.invalidateAtoms(rankDistinct(), "distinct")
	return nil
}
