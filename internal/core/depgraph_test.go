package core

import (
	"math/rand"
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
)

// TestSiblingPredicatesStayCached pins the tentpole acceptance criterion:
// on a warm 100k-row sheet with four same-depth predicates, editing one
// predicate recomputes only its own σ part, the depth's ∧ conjunction and
// the downstream ordering — the three sibling predicates are served from
// cache, where rank-table invalidation would have recomputed the whole
// depth-0 suffix.
func TestSiblingPredicatesStayCached(t *testing.T) {
	s := New(dataset.RandomCars(100_000, 42))
	ids := make([]int, 0, 4)
	for _, p := range []string{
		"Year >= 2003",
		"Price < 30000",
		"Mileage < 90000",
		"Condition = 'Good' OR Condition = 'Excellent'",
	} {
		id, err := s.Select(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}

	// Pipeline shape: base, σ×4 parts, ∧, λ — seven stages.
	plan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 7 {
		t.Fatalf("pipeline has %d stages, want 7: %+v", len(plan.Stages), plan.Stages)
	}
	if got := plan.Stages[5].ID; got != "and:d0" {
		t.Fatalf("combine stage ID = %q, want and:d0", got)
	}

	exact0 := obs.Default.CounterValue("core.eval.invalidate.exact")
	saved0 := obs.Default.CounterValue("core.eval.invalidate.coarse_saved")
	if err := s.ReplaceSelection(ids[1], "Price < 25000"); err != nil {
		t.Fatal(err)
	}
	// Exactly the edited part, the ∧ and the λ carry the sel:2 atom; the
	// rank table would additionally have staled the three sibling parts.
	if d := obs.Default.CounterValue("core.eval.invalidate.exact") - exact0; d != 3 {
		t.Fatalf("invalidate.exact advanced by %d, want 3", d)
	}
	if d := obs.Default.CounterValue("core.eval.invalidate.coarse_saved") - saved0; d != 3 {
		t.Fatalf("invalidate.coarse_saved advanced by %d, want 3 (the sibling σ parts)", d)
	}

	hits0, rec0 := stageCounters()
	coarse0 := obs.Default.CounterValue("core.eval.stage_recomputes_coarse")
	got, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	hits, rec := stageCounters()
	if d := rec - rec0; d != 3 {
		t.Fatalf("recomputed %d stages, want 3 (edited σ, ∧, λ)", d)
	}
	if d := hits - hits0; d != 4 {
		t.Fatalf("served %d stages from cache, want 4 (base and the three sibling σ)", d)
	}
	if d := obs.Default.CounterValue("core.eval.stage_recomputes_coarse") - coarse0; d != 5 {
		t.Fatalf("rank-table simulation recomputed %d stages, want 5 (suffix from the edited σ)", d)
	}

	// The plan agrees: every sibling σ reports a cache hit.
	plan, err = s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i, cached := range []bool{true, true, false, true, true, false, false} {
		if plan.Stages[i].Cached != cached {
			t.Fatalf("stage %d (%s) cached=%v, want %v", i, plan.Stages[i].Name, plan.Stages[i].Cached, cached)
		}
	}

	// And the warm result is bit-identical to a cold clone's replay.
	want, err := s.Clone().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatalf("warm sibling-cached evaluation diverged from cold replay")
	}
}

// TestCombineFallbackOnErroringPart pins the ∧ stage's chained-replay
// semantics: with two same-depth predicates where one errors on a row a
// sibling filters away, the split pipeline must reproduce exactly what
// sequential chained filtering produces (here: success), and stay
// bit-identical to a cold clone.
func TestCombineFallbackOnErroringPart(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Formula("Ratio", "Price / (Year - 2003)"); err != nil {
		t.Fatal(err)
	}
	// Chained order: Year > 2003 runs first and removes the Year = 2003
	// rows that make Ratio divide by zero; as an independent part, the
	// Ratio predicate sees those rows and errors.
	if _, err := s.Select("Year > 2003"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Ratio > 0"); err != nil {
		t.Fatal(err)
	}
	got, gotErr := s.Evaluate()
	want, wantErr := s.Clone().Evaluate()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("split pipeline err %v, cold chained err %v", gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("split pipeline err %q, cold err %q", gotErr, wantErr)
		}
		return
	}
	if got.Render() != want.Render() {
		t.Fatalf("split pipeline diverged from chained replay on erroring part")
	}
}

// TestDepsGraphWellFormed drives random op sequences and checks structural
// invariants of the dependency graph after every step: closed edges (every
// endpoint is a node), unique node IDs, acyclicity, and agreement with the
// evaluation plan (same stage IDs in the same order).
func TestDepsGraphWellFormed(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		s := New(dataset.RandomCars(200, 7+seed))
		for step := 0; step < 40; step++ {
			op := randomOp(s, rng)
			deps, err := s.Deps()
			if err != nil {
				// A cyclic or invalid state has no pipeline; the next op
				// moves on.
				continue
			}
			present := map[string]bool{}
			for _, n := range deps.Nodes {
				if present[n.ID] {
					t.Fatalf("step %d after %s: duplicate node %q", step, op, n.ID)
				}
				present[n.ID] = true
			}
			adj := map[string][]string{}
			indeg := map[string]int{}
			for _, e := range deps.Edges {
				if !present[e.From] || !present[e.To] {
					t.Fatalf("step %d after %s: edge %s→%s has missing endpoint", step, op, e.From, e.To)
				}
				adj[e.From] = append(adj[e.From], e.To)
				indeg[e.To]++
			}
			// Kahn's algorithm: all nodes drain iff the graph is acyclic.
			var queue []string
			for _, n := range deps.Nodes {
				if indeg[n.ID] == 0 {
					queue = append(queue, n.ID)
				}
			}
			drained := 0
			for len(queue) > 0 {
				n := queue[0]
				queue = queue[1:]
				drained++
				for _, m := range adj[n] {
					if indeg[m]--; indeg[m] == 0 {
						queue = append(queue, m)
					}
				}
			}
			if drained != len(deps.Nodes) {
				t.Fatalf("step %d after %s: dependency graph has a cycle", step, op)
			}
			// Stage nodes mirror the plan, ID for ID, in order.
			plan, err := s.Plan()
			if err != nil || plan.Error != "" {
				continue
			}
			var stageIDs []string
			for _, n := range deps.Nodes {
				if n.Kind != "basecol" {
					stageIDs = append(stageIDs, n.ID)
				}
			}
			if len(stageIDs) != len(plan.Stages) {
				t.Fatalf("step %d after %s: %d stage nodes vs %d plan stages", step, op, len(stageIDs), len(plan.Stages))
			}
			for i, st := range plan.Stages {
				if stageIDs[i] != st.ID {
					t.Fatalf("step %d after %s: deps stage %d is %q, plan says %q", step, op, i, stageIDs[i], st.ID)
				}
			}
		}
	}
}

// TestDepsEdgesReflectReferences pins the graph's content on a scripted
// multi-depth sheet: η over θ over θ over a base column, with a predicate
// over the aggregate.
func TestDepsEdgesReflectReferences(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Formula("F1", "Price / 1000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("F2", "F1 * 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("A", relation.AggAvg, "F2", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("A > 0"); err != nil {
		t.Fatal(err)
	}
	deps, err := s.Deps()
	if err != nil {
		t.Fatal(err)
	}
	has := func(from, to string) bool {
		for _, e := range deps.Edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]string{
		{"basecol:price", "col:f1"},
		{"col:f1", "col:f2"},
		{"col:f2", "col:a"},
		{"base", "col:f1"},
	} {
		if !has(e[0], e[1]) {
			var all []string
			for _, ed := range deps.Edges {
				all = append(all, ed.From+"→"+ed.To)
			}
			t.Fatalf("missing edge %s→%s; have: %s", e[0], e[1], strings.Join(all, ", "))
		}
	}
	// The depth-1 predicate over A depends on the aggregate stage.
	selTo := ""
	for _, n := range deps.Nodes {
		if strings.HasPrefix(n.ID, "sel:") {
			selTo = n.ID
		}
	}
	if selTo == "" {
		t.Fatalf("no selection node in %+v", deps.Nodes)
	}
	if !has("col:a", selTo) {
		t.Fatalf("missing edge col:a→%s", selTo)
	}
}

// TestIdenticalDefinitionsShareArtifacts pins the name-agnostic keying:
// two formula columns with the same definition produce one artifact — the
// second stage is a cache hit on the first's fingerprint.
func TestIdenticalDefinitionsShareArtifacts(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Formula("KiloPrice", "Price / 1000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("PriceK", "Price / 1000"); err != nil {
		t.Fatal(err)
	}
	hits0, _ := stageCounters()
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := stageCounters()
	// base, θ KiloPrice AND θ PriceK (same fingerprint) all hit.
	if d := hits - hits0; d != 3 {
		t.Fatalf("%d cache hits, want 3 (identical definition shares the artifact)", d)
	}
	names := res.Table.Schema.Names()
	found := 0
	for _, n := range names {
		if n == "KiloPrice" || n == "PriceK" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("both identically defined columns must materialise under their own names; schema: %v", names)
	}
}
