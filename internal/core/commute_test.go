package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
)

// op is one operator instance with explicit precedence edges (deps are
// indexes of ops that must be applied earlier because they create columns
// or grouping levels this op requires).
type op struct {
	name  string
	deps  []int
	apply func(s *Spreadsheet) error
}

// applyProgram runs ops in the given order and returns the rendered result.
func applyProgram(t *testing.T, ops []op, order []int) string {
	t.Helper()
	s := New(dataset.UsedCars())
	for _, i := range order {
		if err := ops[i].apply(s); err != nil {
			t.Fatalf("order %v: op %s: %v", order, ops[i].name, err)
		}
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatalf("order %v: evaluate: %v", order, err)
	}
	return res.Render()
}

// validOrders enumerates permutations of 0..n-1 that respect the deps
// partial order, up to limit.
func validOrders(ops []op, limit int) [][]int {
	n := len(ops)
	var out [][]int
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(out) >= limit {
			return
		}
		if len(perm) == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			ok := true
			for _, d := range ops[i].deps {
				if !used[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			rec()
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// TestTheorem2Commutativity checks the paper's Theorem 2 on a program that
// exercises all five unary data-manipulation operators plus grouping and
// ordering: every precedence-respecting application order must produce the
// identical spreadsheet.
func TestTheorem2Commutativity(t *testing.T) {
	sel := func(pred string) func(*Spreadsheet) error {
		return func(s *Spreadsheet) error { _, err := s.Select(pred); return err }
	}
	ops := []op{
		0: {name: "τ Model", apply: func(s *Spreadsheet) error { return s.GroupBy(Desc, "Model") }},
		1: {name: "τ Year", deps: []int{0}, apply: func(s *Spreadsheet) error { return s.GroupBy(Asc, "Year") }},
		2: {name: "λ Price", apply: func(s *Spreadsheet) error { return s.Sort("Price", Asc) }},
		3: {name: "σ cond", apply: sel("Condition = 'Good' OR Condition = 'Excellent'")},
		4: {name: "η avg", deps: []int{1}, apply: func(s *Spreadsheet) error {
			_, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 3)
			return err
		}},
		5: {name: "θ ratio", deps: []int{4}, apply: func(s *Spreadsheet) error {
			_, err := s.Formula("Ratio", "Price / AvgP")
			return err
		}},
		6: {name: "σ having", deps: []int{4}, apply: sel("AvgP > 14000")},
		7: {name: "π Mileage", apply: func(s *Spreadsheet) error { return s.Hide("Mileage") }},
	}
	orders := validOrders(ops, 200)
	if len(orders) < 10 {
		t.Fatalf("only %d valid orders; dependency spec too tight", len(orders))
	}
	want := applyProgram(t, ops, orders[0])
	for _, order := range orders[1:] {
		if got := applyProgram(t, ops, order); got != want {
			t.Fatalf("order %v diverged:\n%s\nwant:\n%s", order, got, want)
		}
	}
}

// TestTheorem2SelectionAggregationCommute pins the pair the paper calls out
// as surprising: σ and η commute because the aggregate column recomputes.
func TestTheorem2SelectionAggregationCommute(t *testing.T) {
	run := func(selFirst bool) string {
		s := New(dataset.UsedCars())
		do := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		agg := func() {
			_, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 1)
			do(err)
		}
		select2005 := func() {
			_, err := s.Select("Year = 2005")
			do(err)
		}
		if selFirst {
			select2005()
			agg()
		} else {
			agg()
			select2005()
		}
		res, err := s.Evaluate()
		do(err)
		return res.Render()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("σ/η do not commute:\n%s\nvs\n%s", a, b)
	}
}

// TestTheorem2DEAggregationCommute pins δ/η commutativity.
func TestTheorem2DEAggregationCommute(t *testing.T) {
	run := func(deFirst bool) string {
		s := New(dataset.UsedCars())
		if err := s.Hide("ID"); err != nil {
			t.Fatal(err)
		}
		de := func() {
			if err := s.Distinct(); err != nil {
				t.Fatal(err)
			}
		}
		agg := func() {
			if _, err := s.AggregateAs("N", relation.AggCount, "Model", 1); err != nil {
				t.Fatal(err)
			}
		}
		if deFirst {
			de()
			agg()
		} else {
			agg()
			de()
		}
		res, err := s.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("δ/η do not commute:\n%s\nvs\n%s", a, b)
	}
}

// TestRandomizedCommutativity fuzzes random unary programs over the larger
// synthetic car relation: shuffled precedence-respecting orders must agree.
func TestRandomizedCommutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	preds := []string{
		"Price < 25000", "Price >= 12000", "Year <> 2003",
		"Mileage < 150000", "Condition IN ('Excellent','Good','Fair')",
		"Model LIKE '%a%'", "Year BETWEEN 2001 AND 2008",
	}
	for trial := 0; trial < 25; trial++ {
		var ops []op
		sel := func(pred string) {
			p := pred
			ops = append(ops, op{name: "σ " + p, apply: func(s *Spreadsheet) error {
				_, err := s.Select(p)
				return err
			}})
		}
		nsel := 1 + rng.Intn(3)
		for i := 0; i < nsel; i++ {
			sel(preds[rng.Intn(len(preds))])
		}
		grouped := rng.Intn(2) == 0
		gIdx := -1
		if grouped {
			gIdx = len(ops)
			ops = append(ops, op{name: "τ Model", apply: func(s *Spreadsheet) error {
				return s.GroupBy(Asc, "Model")
			}})
		}
		if rng.Intn(2) == 0 {
			level := 1
			var deps []int
			if grouped {
				level = 2
				deps = []int{gIdx}
			}
			lv := level
			aIdx := len(ops)
			ops = append(ops, op{name: "η", deps: deps, apply: func(s *Spreadsheet) error {
				_, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", lv)
				return err
			}})
			if rng.Intn(2) == 0 {
				ops = append(ops, op{name: "σ AvgP", deps: []int{aIdx}, apply: func(s *Spreadsheet) error {
					_, err := s.Select("AvgP > 15000")
					return err
				}})
			}
		}
		if rng.Intn(2) == 0 {
			ops = append(ops, op{name: "λ", apply: func(s *Spreadsheet) error {
				return s.Sort("Price", Desc)
			}})
		}
		if rng.Intn(2) == 0 {
			ops = append(ops, op{name: "π", apply: func(s *Spreadsheet) error {
				return s.Hide("Mileage")
			}})
		}

		base := dataset.RandomCars(60, int64(trial))
		apply := func(order []int) string {
			s := New(base)
			for _, i := range order {
				if err := ops[i].apply(s); err != nil {
					t.Fatalf("trial %d op %s: %v", trial, ops[i].name, err)
				}
			}
			res, err := s.Evaluate()
			if err != nil {
				t.Fatalf("trial %d evaluate: %v", trial, err)
			}
			return res.Render()
		}
		orders := validOrders(ops, 24)
		want := apply(orders[0])
		for _, order := range orders[1:] {
			if got := apply(order); got != want {
				t.Fatalf("trial %d order %v diverged", trial, order)
			}
		}
	}
}

// TestTheorem3ModificationEqualsReplay: modifying one stored operator and
// re-evaluating equals re-running the rewritten program from scratch.
func TestTheorem3ModificationEqualsReplay(t *testing.T) {
	build := func(yearPred string) string {
		s := New(dataset.UsedCars())
		for _, p := range []string{yearPred, "Model = 'Jetta'", "Mileage < 80000"} {
			if _, err := s.Select(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.GroupBy(Asc, "Condition"); err != nil {
			t.Fatal(err)
		}
		if err := s.Sort("Price", Asc); err != nil {
			t.Fatal(err)
		}
		res, err := s.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}

	s := New(dataset.UsedCars())
	yearID, err := s.Select("Year = 2005")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"Model = 'Jetta'", "Mileage < 80000"} {
		if _, err := s.Select(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.GroupBy(Asc, "Condition"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	for _, year := range []int{2006, 2005, 2006} {
		pred := fmt.Sprintf("Year = %d", year)
		if err := s.ReplaceSelection(yearID, pred); err != nil {
			t.Fatal(err)
		}
		res, err := s.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Render(), build(pred); got != want {
			t.Fatalf("modified state ≠ replay for %s:\n%s\nvs\n%s", pred, got, want)
		}
	}
}
