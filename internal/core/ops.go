package core

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Select applies σ_F (Def. 5): the predicate joins the query state and rows
// failing it disappear from every subsequent Evaluate. The predicate text
// uses the expression language of internal/expr and may reference computed
// columns (enabling HAVING-style group selection per Theorem 1, step 5).
func (s *Spreadsheet) Select(predicate string) (int, error) {
	e, err := expr.Parse(predicate)
	if err != nil {
		return 0, err
	}
	return s.SelectExpr(e)
}

// SelectExpr is Select over a pre-parsed predicate. It returns the stable
// selection ID used by the query-modification API.
func (s *Spreadsheet) SelectExpr(e expr.Expr) (int, error) {
	kind, err := expr.Check(e, s.columnKind)
	if err != nil {
		return 0, err
	}
	if kind != value.KindBool && kind != value.KindNull {
		return 0, fmt.Errorf("core: selection predicate must be boolean, got %s", kind)
	}
	if expr.ContainsAggregate(e) {
		return 0, fmt.Errorf("core: aggregates are created with Aggregate, not inline in predicates")
	}
	if expr.ContainsWindow(e) {
		return 0, fmt.Errorf("core: window functions are created with Window, not inline in predicates")
	}
	d, err := s.exprDepth(e)
	if err != nil {
		return 0, err
	}
	before := s.begin()
	s.state.nextSelID++
	id := s.state.nextSelID
	s.state.selections = append(s.state.selections, Selection{ID: id, Pred: e})
	s.commit(before, "σ "+e.SQL())
	s.invalidateAtoms(rankSelect(d), fmt.Sprintf("selset:%d", d))
	return id, nil
}

// GroupBy applies τ (Def. 3): it appends a new, finest grouping level whose
// relative basis is attrs, ordering the new sibling groups by dir. Finest-
// level sort keys naming attrs are subtracted (the paper's list
// subtraction o_L = L − grouping-basis).
func (s *Spreadsheet) GroupBy(dir Dir, attrs ...string) error {
	if len(attrs) == 0 {
		return fmt.Errorf("core: grouping needs at least one attribute")
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if !s.hasColumn(a) {
			return fmt.Errorf("core: unknown column %q", a)
		}
		d, err := s.aggDepth(a, map[string]bool{})
		if err != nil {
			return err
		}
		if d > 0 {
			return fmt.Errorf("core: cannot group by aggregate-derived column %q", a)
		}
		if s.state.inAnyBasis(a) {
			return fmt.Errorf("core: column %q is already in a grouping basis", a)
		}
		k := strings.ToLower(a)
		if seen[k] {
			return fmt.Errorf("core: duplicate grouping attribute %q", a)
		}
		seen[k] = true
	}
	before := s.begin()
	s.state.grouping = append(s.state.grouping, GroupLevel{
		Rel: append([]string(nil), attrs...), Dir: dir})
	// o_L = L − grouping-basis: drop finest sort keys that became grouped.
	var kept []SortKey
	for _, k := range s.state.finest {
		if !seen[strings.ToLower(k.Column)] {
			kept = append(kept, k)
		}
	}
	s.state.finest = kept
	s.commit(before, fmt.Sprintf("τ {%s} %s", strings.Join(attrs, ","), dir))
	// A new finest level reshapes the presentation order; existing
	// aggregates keep their cumulative bases (the new level is below every
	// basis already in use), so only order-dependent artifacts go stale.
	s.invalidateAtoms(rankAgg(1), "order")
	return nil
}

// OrderBy applies λ (Def. 4) at a 1-based grouping level. Level n (the
// finest, = len(Grouping())+1) orders tuples inside the finest groups by
// attr; ordering on an attribute that is in some grouping basis is the
// paper's case-3 no-op. An intermediate level l whose child relative basis
// contains attr merely flips that level's direction (case 2). Any other
// intermediate-level ordering destroys the grouping below l (case 1), which
// is refused while aggregates depend on the destroyed levels (the paper's
// implementation rule in Sec. III-A).
func (s *Spreadsheet) OrderBy(attr string, dir Dir, level int) error {
	n := s.state.levelCount()
	if level < 1 || level > n {
		return fmt.Errorf("core: level %d out of range 1..%d", level, n)
	}
	if !s.hasColumn(attr) {
		return fmt.Errorf("core: unknown column %q", attr)
	}
	if level == n {
		if s.state.inAnyBasis(attr) {
			// Case 3 with attribute ∈ g_i: ordering unchanged.
			before := s.begin()
			s.commit(before, fmt.Sprintf("λ %s %s level %d (no-op: grouped)", attr, dir, level))
			return nil
		}
		before := s.begin()
		replaced := false
		for i, k := range s.state.finest {
			if strings.EqualFold(k.Column, attr) {
				s.state.finest[i].Dir = dir
				replaced = true
				break
			}
		}
		if !replaced {
			s.state.finest = append(s.state.finest, SortKey{Column: attr, Dir: dir})
		}
		s.commit(before, fmt.Sprintf("λ %s %s level %d", attr, dir, level))
		s.invalidateAtoms(rankOrder, "order")
		return nil
	}
	// Intermediate level: the children's relative basis dictates the
	// ordering attributes (g_{l+1} − g_l).
	child := s.state.grouping[level-1] // level l's children are grouping[l-1]
	inChild := false
	for _, a := range child.Rel {
		if strings.EqualFold(a, attr) {
			inChild = true
			break
		}
	}
	if inChild {
		before := s.begin()
		s.state.grouping[level-1].Dir = dir
		s.commit(before, fmt.Sprintf("λ %s %s level %d", attr, dir, level))
		s.invalidateAtoms(rankOrder, "order")
		return nil
	}
	// Case 1: destroy grouping below level l.
	for _, c := range s.state.computed {
		if c.Kind == KindAggregate && c.Level > level {
			return fmt.Errorf("core: ordering by %q at level %d would destroy grouping that aggregate %q depends on; remove it first",
				attr, level, c.Name)
		}
	}
	before := s.begin()
	s.state.grouping = s.state.grouping[:level-1]
	s.state.finest = []SortKey{{Column: attr, Dir: dir}}
	s.commit(before, fmt.Sprintf("λ %s %s level %d (grouping below destroyed)", attr, dir, level))
	// Destroying levels is refused while deeper aggregates exist, so the
	// surviving aggregates' bases are intact — only the order changes.
	s.invalidateAtoms(rankAgg(1), "order")
	return nil
}

// Sort is the interface's header-click convenience: order by attr at the
// finest level.
func (s *Spreadsheet) Sort(attr string, dir Dir) error {
	return s.OrderBy(attr, dir, s.state.levelCount())
}

// Hide applies π (Def. 6) to a base column: the column leaves C but stays
// in R, so predicates attached to it remain active (Sec. V-A). Hiding a
// computed column instead removes its definition, which is what the paper
// means by "the aggregates have to be projected out" — use RemoveComputed
// for that, or Hide which delegates.
func (s *Spreadsheet) Hide(column string) error {
	if c := s.state.findComputed(column); c != nil {
		return s.RemoveComputed(column)
	}
	if !s.base.Schema.Has(column) {
		return fmt.Errorf("core: unknown column %q", column)
	}
	if s.state.isHidden(column) {
		return fmt.Errorf("core: column %q is already projected out", column)
	}
	if vis := s.VisibleSchema(); len(vis) == 1 {
		return fmt.Errorf("core: cannot project out the last visible column")
	}
	before := s.begin()
	s.state.hidden = append(s.state.hidden, column)
	s.commit(before, "π "+column)
	return nil
}

// Reinstate is the inverse projection Π̄ (Sec. V-B): history is rewritten
// as if the π never happened.
func (s *Spreadsheet) Reinstate(column string) error {
	for i, h := range s.state.hidden {
		if strings.EqualFold(h, column) {
			before := s.begin()
			s.state.hidden = append(s.state.hidden[:i:i], s.state.hidden[i+1:]...)
			s.commit(before, "Π̄ "+column)
			return nil
		}
	}
	return fmt.Errorf("core: column %q is not projected out", column)
}

// Aggregate applies η(f, c, level) (Def. 11): it creates a computed column
// holding f over column col within each level-l group, repeated on every
// row of the group (Table III). Level 1 aggregates across the whole sheet.
// The returned name is auto-generated (e.g. "Avg_Price") and unique.
func (s *Spreadsheet) Aggregate(fn relation.AggFunc, col string, level int) (string, error) {
	return s.AggregateAs("", fn, col, level)
}

// AggregateAs is Aggregate with an explicit result-column name.
func (s *Spreadsheet) AggregateAs(name string, fn relation.AggFunc, col string, level int) (string, error) {
	inKind, ok := s.columnKind(col)
	if !ok {
		return "", fmt.Errorf("core: unknown column %q", col)
	}
	n := s.state.levelCount()
	if level < 1 || level > n {
		return "", fmt.Errorf("core: grouping level %d out of range 1..%d", level, n)
	}
	switch fn {
	case relation.AggSum, relation.AggAvg, relation.AggStdDev:
		if !inKind.Numeric() {
			return "", fmt.Errorf("core: %s requires a numeric column, %q is %s", fn, col, inKind)
		}
	}
	if name == "" {
		base := titleCase(string(fn)) + "_" + col
		name = base
		for i := 2; s.hasColumn(name); i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
	} else if s.hasColumn(name) {
		return "", fmt.Errorf("core: column %q already exists", name)
	}
	if _, err := s.aggDepth(col, map[string]bool{}); err != nil {
		return "", err
	}
	before := s.begin()
	s.state.computed = append(s.state.computed, &ComputedColumn{
		Name: name, Kind: KindAggregate, Agg: fn, Input: col, Level: level,
		ResultKind: fn.ResultKind(inKind),
	})
	s.commit(before, fmt.Sprintf("η %s(%s) level %d → %s", fn, col, level, name))
	s.invalidateAtoms(s.computedRank(s.state.computed[len(s.state.computed)-1]), "col:"+strings.ToLower(name))
	return name, nil
}

// Formula applies θ(f) (Def. 12): a row-local computed column defined by an
// arithmetic/string expression over existing columns. Pass an empty name to
// auto-generate one.
func (s *Spreadsheet) Formula(name, formula string) (string, error) {
	e, err := expr.Parse(formula)
	if err != nil {
		return "", err
	}
	return s.FormulaExpr(name, e)
}

// FormulaExpr is Formula over a pre-parsed expression.
func (s *Spreadsheet) FormulaExpr(name string, e expr.Expr) (string, error) {
	if expr.ContainsAggregate(e) {
		return "", fmt.Errorf("core: aggregates are created with Aggregate, not inline in formulas")
	}
	if expr.ContainsWindow(e) {
		return "", fmt.Errorf("core: window functions are created with Window, not inline in formulas")
	}
	kind, err := expr.Check(e, s.columnKind)
	if err != nil {
		return "", err
	}
	if name == "" {
		name = "Formula_1"
		for i := 2; s.hasColumn(name); i++ {
			name = fmt.Sprintf("Formula_%d", i)
		}
	} else if s.hasColumn(name) {
		return "", fmt.Errorf("core: column %q already exists", name)
	}
	before := s.begin()
	s.state.computed = append(s.state.computed, &ComputedColumn{
		Name: name, Kind: KindFormula, Formula: e, ResultKind: kind,
	})
	if _, err := s.aggDepth(name, map[string]bool{}); err != nil {
		// Roll back the speculative append (cycle detection).
		s.state.computed = s.state.computed[:len(s.state.computed)-1]
		return "", err
	}
	s.commit(before, "θ "+name+" = "+e.SQL())
	s.invalidateAtoms(s.computedRank(s.state.computed[len(s.state.computed)-1]), "col:"+strings.ToLower(name))
	return name, nil
}

// Window applies ω: it creates a computed column holding fn evaluated over
// each row's window — the rows sharing the row's partitionBy key, ordered by
// orderBy, restricted by the optional ROWS frame. Ranking functions (RANK,
// DENSE_RANK, ROW_NUMBER) take no input column and require an ordering;
// SUM/AVG/MIN/MAX aggregate the input column over the frame; COUNT with an
// empty input counts the frame's rows. Like an aggregate, a window column is
// computed over the rows surviving the selections shallower than it, so a
// later predicate on the column selects by rank ("top 3 per group") without
// disturbing the window itself. The returned name is auto-generated when
// empty.
func (s *Spreadsheet) Window(fn relation.WindowFunc, input string, partitionBy []string, orderBy []SortKey, frame *relation.Frame) (string, error) {
	return s.WindowAs("", fn, input, partitionBy, orderBy, frame)
}

// WindowAs is Window with an explicit result-column name.
func (s *Spreadsheet) WindowAs(name string, fn relation.WindowFunc, input string, partitionBy []string, orderBy []SortKey, frame *relation.Frame) (string, error) {
	def := &WindowDef{
		Func:        fn,
		Input:       input,
		PartitionBy: append([]string(nil), partitionBy...),
		OrderBy:     append([]SortKey(nil), orderBy...),
	}
	if frame != nil {
		f := *frame
		def.Frame = &f
	}
	return s.windowAs(name, def)
}

// WindowExprAs creates a window column from a parsed OVER expression whose
// argument, partition and order keys are plain column references — the shape
// the operator stores (WindowDef). The SQL layer and the REPL route through
// here.
func (s *Spreadsheet) WindowExprAs(name string, w *expr.WindowCall) (string, error) {
	def, err := windowDefFromCall(w)
	if err != nil {
		return "", err
	}
	return s.windowAs(name, def)
}

// windowDefFromCall lowers a parsed *expr.WindowCall to the core definition,
// requiring every key to be a plain column reference.
func windowDefFromCall(w *expr.WindowCall) (*WindowDef, error) {
	def := &WindowDef{Func: w.Func}
	if w.Arg != nil {
		c, ok := w.Arg.(*expr.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("core: window argument must be a plain column, got %s", w.Arg.SQL())
		}
		def.Input = c.Name
	}
	for _, p := range w.PartitionBy {
		c, ok := p.(*expr.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("core: PARTITION BY key must be a plain column, got %s", p.SQL())
		}
		def.PartitionBy = append(def.PartitionBy, c.Name)
	}
	for _, k := range w.OrderBy {
		c, ok := k.X.(*expr.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("core: window ORDER BY key must be a plain column, got %s", k.X.SQL())
		}
		dir := Asc
		if k.Desc {
			dir = Desc
		}
		def.OrderBy = append(def.OrderBy, SortKey{Column: c.Name, Dir: dir})
	}
	if w.Frame != nil {
		f := *w.Frame
		def.Frame = &f
	}
	return def, nil
}

// checkWindowDef validates a window definition against the current schema
// and returns the column's result kind. Shared by the operator entry point
// and state restoration.
func (s *Spreadsheet) checkWindowDef(def *WindowDef) (value.Kind, error) {
	fn := def.Func
	if _, err := relation.ParseWindowFunc(string(fn)); err != nil {
		return value.KindNull, err
	}
	inKind := value.KindNull
	if fn.NeedsArg() && def.Input == "" {
		return value.KindNull, fmt.Errorf("core: window %s needs an argument column", fn)
	}
	if def.Input != "" {
		if fn.Ranking() {
			return value.KindNull, fmt.Errorf("core: window %s takes no argument", fn)
		}
		k, ok := s.columnKind(def.Input)
		if !ok {
			return value.KindNull, fmt.Errorf("core: unknown column %q", def.Input)
		}
		inKind = k
		switch fn {
		case relation.WinSum, relation.WinAvg:
			if !k.Numeric() {
				return value.KindNull, fmt.Errorf("core: %s requires a numeric column, %q is %s", fn, def.Input, k)
			}
		}
	}
	seen := map[string]bool{}
	for _, c := range def.PartitionBy {
		if !s.hasColumn(c) {
			return value.KindNull, fmt.Errorf("core: unknown column %q", c)
		}
		lk := strings.ToLower(c)
		if seen[lk] {
			return value.KindNull, fmt.Errorf("core: duplicate PARTITION BY column %q", c)
		}
		seen[lk] = true
	}
	for _, k := range def.OrderBy {
		if !s.hasColumn(k.Column) {
			return value.KindNull, fmt.Errorf("core: unknown column %q", k.Column)
		}
	}
	if fn.Ranking() {
		if len(def.OrderBy) == 0 {
			return value.KindNull, fmt.Errorf("core: window %s needs ORDER BY", fn)
		}
		if def.Frame != nil {
			return value.KindNull, fmt.Errorf("core: window %s takes no frame", fn)
		}
	}
	if def.Frame != nil {
		if len(def.OrderBy) == 0 {
			return value.KindNull, fmt.Errorf("core: a window frame needs ORDER BY")
		}
		if err := def.Frame.Validate(); err != nil {
			return value.KindNull, err
		}
	}
	return fn.ResultKind(inKind), nil
}

// windowAs validates def, names the column, and appends the ω definition to
// the query state.
func (s *Spreadsheet) windowAs(name string, def *WindowDef) (string, error) {
	kind, err := s.checkWindowDef(def)
	if err != nil {
		return "", err
	}
	if name == "" {
		base := titleCase(string(def.Func))
		if def.Input != "" {
			base += "_" + def.Input
		}
		name = base
		for i := 2; s.hasColumn(name); i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
	} else if s.hasColumn(name) {
		return "", fmt.Errorf("core: column %q already exists", name)
	}
	before := s.begin()
	s.state.computed = append(s.state.computed, &ComputedColumn{
		Name: name, Kind: KindWindow, Win: def, ResultKind: kind,
	})
	if _, err := s.aggDepth(name, map[string]bool{}); err != nil {
		// Roll back the speculative append (cycle detection).
		s.state.computed = s.state.computed[:len(s.state.computed)-1]
		return "", err
	}
	s.commit(before, "ω "+name+" = "+def.SQL())
	s.invalidateAtoms(s.computedRank(s.state.computed[len(s.state.computed)-1]), "col:"+strings.ToLower(name))
	return name, nil
}

// Distinct applies δ (Def. 13): duplicates over the currently visible
// non-computed columns are eliminated; the recorded column set is part of
// the query state so re-evaluation is deterministic (DESIGN.md §3.2).
// Computed columns are recomputed over the survivors.
func (s *Spreadsheet) Distinct() error {
	var cols []string
	for _, c := range s.base.Schema {
		if !s.state.isHidden(c.Name) {
			cols = append(cols, c.Name)
		}
	}
	before := s.begin()
	s.state.distinctOn = cols
	s.commit(before, "δ distinct on ("+strings.Join(cols, ",")+")")
	s.invalidateAtoms(rankDistinct(), "distinct")
	return nil
}

// Rename changes a column's name (the housekeeping operator of Sec. III-C),
// rewriting every reference in predicates, formulas, grouping and ordering.
func (s *Spreadsheet) Rename(old, new string) error {
	if !s.hasColumn(old) {
		return fmt.Errorf("core: unknown column %q", old)
	}
	// A case-only rename targets the same column; otherwise the new name
	// must be free.
	if s.hasColumn(new) && !strings.EqualFold(old, new) {
		return fmt.Errorf("core: column %q already exists", new)
	}
	if new == "" {
		return fmt.Errorf("core: empty column name")
	}
	before := s.begin()
	if i := s.base.Schema.IndexOf(old); i >= 0 {
		// The base relation is shared with stored sheets; rename on a copy
		// of the schema only (rows are positional).
		nb := *s.base
		nb.Schema = s.base.Schema.Clone()
		nb.Schema[i].Name = new
		s.base = &nb
	}
	rewrite := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) {
			if c, ok := n.(*expr.ColumnRef); ok && strings.EqualFold(c.Name, old) {
				c.Name = new
			}
		})
	}
	for _, sel := range s.state.selections {
		rewrite(sel.Pred)
	}
	for _, c := range s.state.computed {
		if strings.EqualFold(c.Name, old) {
			c.Name = new
		}
		switch c.Kind {
		case KindFormula:
			rewrite(c.Formula)
		case KindWindow:
			w := c.Win
			if strings.EqualFold(w.Input, old) {
				w.Input = new
			}
			for i, p := range w.PartitionBy {
				if strings.EqualFold(p, old) {
					w.PartitionBy[i] = new
				}
			}
			for i, k := range w.OrderBy {
				if strings.EqualFold(k.Column, old) {
					w.OrderBy[i].Column = new
				}
			}
		default:
			if strings.EqualFold(c.Input, old) {
				c.Input = new
			}
		}
	}
	for gi := range s.state.grouping {
		for ai, a := range s.state.grouping[gi].Rel {
			if strings.EqualFold(a, old) {
				s.state.grouping[gi].Rel[ai] = new
			}
		}
		if strings.EqualFold(s.state.grouping[gi].By, old) {
			s.state.grouping[gi].By = new
		}
	}
	for i, k := range s.state.finest {
		if strings.EqualFold(k.Column, old) {
			s.state.finest[i].Column = new
		}
	}
	for i, h := range s.state.hidden {
		if strings.EqualFold(h, old) {
			s.state.hidden[i] = new
		}
	}
	for i, d := range s.state.distinctOn {
		if strings.EqualFold(d, old) {
			s.state.distinctOn[i] = new
		}
	}
	s.commit(before, fmt.Sprintf("rename %s → %s", old, new))
	// Renames rewrite definitions wholesale (and may replace the base
	// relation); every stage fingerprint downstream of the base changes.
	s.invalidateAtoms(rankBase(), "base")
	return nil
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	lower := strings.ToLower(s)
	return strings.ToUpper(lower[:1]) + lower[1:]
}
