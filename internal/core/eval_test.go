package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// nullCars builds a car relation with NULLs sprinkled into Price and
// Condition.
func nullCars() *relation.Relation {
	r := relation.New("cars", dataset.CarSchema())
	add := func(id int64, model string, price value.Value, year int64, cond value.Value) {
		r.MustAppend(value.NewInt(id), value.NewString(model), price,
			value.NewInt(year), value.NewInt(10000), cond)
	}
	add(1, "Jetta", value.NewInt(15000), 2005, value.NewString("Good"))
	add(2, "Jetta", value.Null, 2005, value.NewString("Good"))
	add(3, "Jetta", value.NewInt(17000), 2006, value.Null)
	add(4, "Civic", value.Null, 2006, value.Null)
	add(5, "Civic", value.NewInt(13000), 2005, value.NewString("Fair"))
	return r
}

func TestEvaluateWithNullData(t *testing.T) {
	s := New(nullCars())
	// NULL Price fails Price < 16000 (unknown is not true).
	if _, err := s.Select("Price < 16000"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (ids 1 and 5)", res.Table.Len())
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	s := New(nullCars())
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("N", relation.AggCount, "ID", 1); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	ai := res.Table.Schema.IndexOf("AvgP")
	want := (15000.0 + 17000 + 13000) / 3
	if got := res.Table.TupleRows()[0][ai].Float(); got != want {
		t.Fatalf("AvgP = %v, want %v (NULLs skipped)", got, want)
	}
	ni := res.Table.Schema.IndexOf("N")
	if res.Table.TupleRows()[0][ni].Int() != 5 {
		t.Fatal("COUNT counts all tuples")
	}
}

func TestGroupingWithNullKeys(t *testing.T) {
	// NULL Condition forms its own group, ordered first ascending.
	s := New(nullCars())
	if err := s.GroupBy(Asc, "Condition"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("N", relation.AggCount, "ID", 2); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Root.Children
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (NULL, Fair, Good)", len(groups))
	}
	if !groups[0].Key[0].IsNull() || groups[0].Rows() != 2 {
		t.Fatalf("first group = %v (%d rows), want NULL group of 2", groups[0].Key, groups[0].Rows())
	}
	ni := res.Table.Schema.IndexOf("N")
	if res.Table.TupleRows()[0][ni].Int() != 2 {
		t.Fatal("aggregate over the NULL group wrong")
	}
}

func TestFormulaOverNulls(t *testing.T) {
	s := New(nullCars())
	if _, err := s.Formula("Double", "Price * 2"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	di := res.Table.Schema.IndexOf("Double")
	ii := res.Table.Schema.IndexOf("ID")
	for _, row := range res.Table.TupleRows() {
		if row[ii].Int() == 2 && !row[di].IsNull() {
			t.Fatal("NULL input must yield NULL formula output")
		}
		if row[ii].Int() == 1 && row[di].Int() != 30000 {
			t.Fatalf("Double = %v", row[di])
		}
	}
}

func TestOrderingByHiddenColumn(t *testing.T) {
	// Grouping and ordering survive the projection of their column (π only
	// affects C, not R).
	s := New(dataset.UsedCars())
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Desc); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Price"); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Model"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Civic group first (asc), most expensive Civic (322, $16000) first.
	ii := res.Table.Schema.IndexOf("ID")
	if res.Table.TupleRows()[0][ii].Int() != 322 {
		t.Fatalf("first row = %v", res.Table.TupleRows()[0])
	}
	if res.Table.Schema.Has("Price") || res.Table.Schema.Has("Model") {
		t.Fatal("hidden columns leaked into the result")
	}
}

// TestQuickGroupTreeInvariants: for random data and random grouping
// configurations, the group tree partitions the rows exactly — children
// tile their parent with no gaps or overlaps, and every leaf group is
// constant on the cumulative basis.
func TestQuickGroupTreeInvariants(t *testing.T) {
	cols := []string{"Model", "Year", "Condition"}
	f := func(seed int64, levelMask uint8, dirMask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(dataset.RandomCars(40+rng.Intn(60), seed))
		levels := 1 + int(levelMask)%3
		for i := 0; i < levels; i++ {
			if err := s.GroupBy(Dir(dirMask>>i&1 == 1), cols[i]); err != nil {
				return false
			}
		}
		res, err := s.Evaluate()
		if err != nil {
			return false
		}
		basisIdx := make([]int, 0, levels)
		for i := 0; i < levels; i++ {
			j := res.Table.Schema.IndexOf(cols[i])
			if j < 0 {
				return false
			}
			basisIdx = append(basisIdx, j)
		}
		var check func(g *Group, depth int) bool
		check = func(g *Group, depth int) bool {
			if g.Start > g.End || g.Start < 0 || g.End > res.Table.Len() {
				return false
			}
			if len(g.Children) == 0 {
				if depth <= len(basisIdx) && depth > 0 {
					// Non-root leaf must sit at the deepest level.
					if depth != levels {
						return false
					}
				}
				// All rows in a leaf share the cumulative basis values.
				if g.Rows() > 0 {
					ref := res.Table.TupleRows()[g.Start]
					for r := g.Start; r < g.End; r++ {
						for _, bi := range basisIdx[:min(depth, len(basisIdx))] {
							if !value.Equal(res.Table.TupleRows()[r][bi], ref[bi]) {
								return false
							}
						}
					}
				}
				return true
			}
			pos := g.Start
			for _, c := range g.Children {
				if c.Start != pos {
					return false // gap or overlap
				}
				pos = c.End
				if !check(c, depth+1) {
					return false
				}
			}
			return pos == g.End
		}
		return check(res.Root, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestQuickSelectionSubset: applying any additional selection never adds
// rows and the survivors are a subset under every configuration.
func TestQuickSelectionSubset(t *testing.T) {
	preds := []string{
		"Price < 20000", "Year >= 2004", "Model LIKE '%a%'",
		"Mileage BETWEEN 10000 AND 120000", "Condition <> 'Poor'",
	}
	f := func(seed int64, pick uint8) bool {
		s := New(dataset.RandomCars(80, seed))
		before, err := s.Evaluate()
		if err != nil {
			return false
		}
		if _, err := s.Select(preds[int(pick)%len(preds)]); err != nil {
			return false
		}
		after, err := s.Evaluate()
		if err != nil {
			return false
		}
		if after.Table.Len() > before.Table.Len() {
			return false
		}
		// Every surviving row key existed before.
		seen := map[string]int{}
		for _, row := range before.Table.TupleRows() {
			seen[row.Key()]++
		}
		for _, row := range after.Table.TupleRows() {
			if seen[row.Key()] == 0 {
				return false
			}
			seen[row.Key()]--
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateMemoised(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Select("Year = 2005"); err != nil {
		t.Fatal(err)
	}
	r1, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("unchanged state should return the memoised result")
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	r3, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("an operator must invalidate the cache")
	}
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	r4, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r3 {
		t.Fatal("undo must invalidate the cache")
	}
	if r4.Table.Len() != r1.Table.Len() {
		t.Fatal("undo result wrong")
	}
}

func TestRenderTree(t *testing.T) {
	s := New(dataset.UsedCars())
	if err := s.GroupBy(Desc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	out := res.RenderTree()
	for _, want := range []string{
		"▾ Model = Jetta (6 rows)",
		"▾ Year = 2005 (3 rows)",
		"▾ Model = Civic (3 rows)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	// Basis columns live in the headers, not the leaf rows.
	if strings.Contains(strings.SplitN(out, "\n", 2)[0], "Model") {
		t.Fatalf("leaf header should omit grouped columns:\n%s", out)
	}
	// Ungrouped sheets render as a flat list without headers.
	flat := New(dataset.UsedCars())
	fres, err := flat.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fres.RenderTree(), "▾") {
		t.Fatal("ungrouped tree should have no group headers")
	}
}

func TestEvaluateRuntimeError(t *testing.T) {
	// A formula that divides by zero on some row surfaces the error from
	// Evaluate rather than producing silent garbage.
	s := New(dataset.UsedCars())
	if _, err := s.Formula("Bad", "Price / (Year - 2005)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err == nil {
		t.Fatal("division by zero during evaluation must error")
	}
	// The sheet recovers once the offending column is removed.
	if err := s.RemoveComputed("Bad"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
}
