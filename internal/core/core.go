// Package core implements the spreadsheet algebra of Liu & Jagadish
// (ICDE 2009): a query algebra over recursively grouped, ordered multi-sets
// of tuples, designed for direct-manipulation query interfaces.
//
// A Spreadsheet corresponds to the paper's quadruple S = (R, C, G, O):
//
//   - R, the base relation (internal/relation), frozen except at binary
//     operators, which create a new base (a "point of non-commutativity");
//   - C, the visible columns: the base columns minus those projected out,
//     plus computed columns created by aggregation (η) and formula
//     computation (θ);
//   - G, the recursive grouping specification (τ);
//   - O, the per-level ordering specification (λ).
//
// Unlike a conventional algebra, operators do not eagerly transform rows.
// Each unary operator edits the spreadsheet's query state — the unordered
// collection of selection predicates, computed-column definitions, hidden
// columns, the duplicate-elimination marker, and the grouping/ordering
// lists (the paper's Sec. V "query state"). Evaluate replays the state
// deterministically, which is what makes the paper's Theorem 2
// (commutativity of the unary data-manipulation operators, subject to
// precedence) and Theorem 3 (query modification ≡ history rewriting) hold
// by construction.
package core

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Dir is a sort direction.
type Dir bool

// Sort directions.
const (
	Asc  Dir = false
	Desc Dir = true
)

// String renders the direction as SQL.
func (d Dir) String() string {
	if d == Desc {
		return "DESC"
	}
	return "ASC"
}

// ParseDir reads "ASC"/"DESC" case-insensitively.
func ParseDir(s string) (Dir, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "ASC", "":
		return Asc, nil
	case "DESC":
		return Desc, nil
	}
	return Asc, fmt.Errorf("core: bad direction %q (want ASC or DESC)", s)
}

// GroupLevel is one level of the recursive grouping below the root. Rel
// holds the relative grouping basis (the attributes added at this level);
// the paper's cumulative basis g_i is the union of Rel over levels ≤ i.
// Dir orders sibling groups at this level.
type GroupLevel struct {
	Rel []string
	Dir Dir
	// By optionally orders this level's groups by a column that is
	// constant within each group (an aggregate at this level, or a basis
	// attribute) instead of by the relative basis — the OrderGroupsBy
	// extension. Empty means the paper's default basis ordering.
	By string
}

// SortKey orders one attribute at the finest grouping level.
type SortKey struct {
	Column string
	Dir    Dir
}

// ComputedKind distinguishes aggregation columns from formula columns.
type ComputedKind uint8

// Computed column kinds.
const (
	// KindAggregate marks a column created by η (Def. 11).
	KindAggregate ComputedKind = iota
	// KindFormula marks a column created by θ (Def. 12).
	KindFormula
	// KindWindow marks a column created by the window operator ω — an
	// ordered, optionally partitioned computation (rank, running aggregate)
	// over the rows surviving the shallower stages.
	KindWindow
)

// WindowDef is the definition of a window computed column (KindWindow).
// All references are plain column names (base or computed), like an
// aggregate's Input, which keeps cloning, persistence and fingerprinting
// structural.
type WindowDef struct {
	Func        relation.WindowFunc
	Input       string // argument column; "" for ranking functions and COUNT(*)
	PartitionBy []string
	OrderBy     []SortKey
	Frame       *relation.Frame
}

// clone deep-copies the definition.
func (w *WindowDef) clone() *WindowDef {
	out := &WindowDef{Func: w.Func, Input: w.Input}
	out.PartitionBy = append([]string(nil), w.PartitionBy...)
	out.OrderBy = append([]SortKey(nil), w.OrderBy...)
	if w.Frame != nil {
		f := *w.Frame
		out.Frame = &f
	}
	return out
}

// columns returns every column the definition references.
func (w *WindowDef) columns() []string {
	var out []string
	if w.Input != "" {
		out = append(out, w.Input)
	}
	out = append(out, w.PartitionBy...)
	for _, k := range w.OrderBy {
		out = append(out, k.Column)
	}
	return out
}

// SQL renders the definition in OVER-clause spelling for history entries
// and the explain surface.
func (w *WindowDef) SQL() string {
	var b strings.Builder
	b.WriteString(string(w.Func))
	b.WriteByte('(')
	if w.Input != "" {
		b.WriteString(w.Input)
	} else if !w.Func.Ranking() {
		b.WriteByte('*')
	}
	b.WriteString(") OVER (")
	sep := ""
	if len(w.PartitionBy) > 0 {
		b.WriteString("PARTITION BY ")
		b.WriteString(strings.Join(w.PartitionBy, ", "))
		sep = " "
	}
	if len(w.OrderBy) > 0 {
		b.WriteString(sep)
		b.WriteString("ORDER BY ")
		for i, k := range w.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Column)
			if k.Dir == Desc {
				b.WriteString(" DESC")
			}
		}
		sep = " "
	}
	if w.Frame != nil {
		b.WriteString(sep)
		b.WriteString(w.Frame.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ComputedColumn is the definition of one computed column. The paper's
// essential property — "once a user has defined such a column, the user
// expects it to reflect the value correctly even as the database or
// spreadsheet is updated" — is realised by re-deriving every computed
// column from its definition on each Evaluate.
type ComputedColumn struct {
	Name string
	Kind ComputedKind

	// Aggregate definition (KindAggregate).
	Agg   relation.AggFunc
	Input string // column aggregated over
	Level int    // 1-based grouping level; 1 aggregates the whole sheet

	// Formula definition (KindFormula).
	Formula expr.Expr

	// Window definition (KindWindow).
	Win *WindowDef

	// ResultKind caches the inferred kind of the column.
	ResultKind value.Kind
}

// dependsOn reports whether the definition references the named column.
func (c *ComputedColumn) dependsOn(col string) bool {
	switch c.Kind {
	case KindAggregate:
		return strings.EqualFold(c.Input, col)
	case KindWindow:
		for _, ref := range c.Win.columns() {
			if strings.EqualFold(ref, col) {
				return true
			}
		}
		return false
	}
	return expr.References(c.Formula, col)
}

// Selection is one σ instance retained in the query state. The ID is stable
// for the life of the spreadsheet so the interface can name predicates when
// offering modification (Sec. V-B).
type Selection struct {
	ID   int
	Pred expr.Expr
}

// Columns returns the columns the predicate references.
func (s Selection) Columns() []string { return expr.Columns(s.Pred) }

// queryState is the unordered operator collection of Sec. V-A.
type queryState struct {
	selections []Selection
	computed   []*ComputedColumn
	hidden     []string // projected-out base columns, π (Def. 6)
	distinctOn []string // nil: no DE; else the recorded dedup column set
	grouping   []GroupLevel
	finest     []SortKey
	nextSelID  int
}

// cloneExpr deep-copies an expression tree. Rename rewrites ColumnRef nodes
// in place, so shared trees between the live state and undo snapshots would
// corrupt history; round-tripping through the SQL rendering is a simple,
// always-correct deep copy.
func cloneExpr(e expr.Expr) expr.Expr {
	c, err := expr.Parse(e.SQL())
	if err != nil {
		panic(fmt.Sprintf("core: expression %q did not round-trip: %v", e.SQL(), err))
	}
	return c
}

func (q *queryState) clone() *queryState {
	out := &queryState{nextSelID: q.nextSelID}
	for _, sel := range q.selections {
		out.selections = append(out.selections, Selection{ID: sel.ID, Pred: cloneExpr(sel.Pred)})
	}
	for _, c := range q.computed {
		cc := *c
		if cc.Formula != nil {
			cc.Formula = cloneExpr(cc.Formula)
		}
		if cc.Win != nil {
			cc.Win = cc.Win.clone()
		}
		out.computed = append(out.computed, &cc)
	}
	out.hidden = append([]string(nil), q.hidden...)
	out.distinctOn = append([]string(nil), q.distinctOn...)
	for _, g := range q.grouping {
		out.grouping = append(out.grouping, GroupLevel{
			Rel: append([]string(nil), g.Rel...), Dir: g.Dir, By: g.By})
	}
	out.finest = append([]SortKey(nil), q.finest...)
	return out
}

// Spreadsheet is the unit of manipulation of the algebra.
type Spreadsheet struct {
	name    string
	base    *relation.Relation // treated as immutable between binary ops
	state   *queryState
	version int // the paper's superscript j, bumped by every operator

	log  []string // human-readable operation history
	undo []snapshot
	redo []snapshot

	// cache memoises the last Evaluate — result or error — for the current
	// version; direct manipulation re-renders constantly, and an unchanged
	// state need not recompute (nor re-fail). Invalidation is by version
	// comparison.
	cacheVersion int
	cacheResult  *Result
	cacheErr     error

	// Incremental-evaluation state (plan.go / snapcache.go): the
	// fingerprint-keyed stage-snapshot cache, the base-identity generation
	// that fences snapshots to one base relation (baseSeen is the pointer
	// the generation was issued for), and the stage plan of the most
	// recent evaluation for the explain surface.
	snapCache *snapCache
	baseSeen  *relation.Relation
	baseGen   uint64
	lastPlan  *EvalPlan
}

type snapshot struct {
	base  *relation.Relation
	state *queryState
	entry string
}

// New creates the base spreadsheet S⁰ for a relation (Def. 2): the columns
// of R, with empty grouping and ordering.
func New(base *relation.Relation) *Spreadsheet {
	return &Spreadsheet{
		name:  base.Name,
		base:  base,
		state: &queryState{},
	}
}

// Name returns the spreadsheet's name (initially its base relation's name).
func (s *Spreadsheet) Name() string { return s.name }

// SetName renames the spreadsheet (used by Save).
func (s *Spreadsheet) SetName(n string) { s.name = n }

// Version returns the paper's version superscript: how many operators have
// been applied since the base spreadsheet.
func (s *Spreadsheet) Version() int { return s.version }

// Base returns the current base relation (read-only by convention).
func (s *Spreadsheet) Base() *relation.Relation { return s.base }

// History returns the human-readable operation log.
func (s *Spreadsheet) History() []string { return append([]string(nil), s.log...) }

// begin snapshots the state before a mutating operator so Undo can restore
// it; commit finalises the operator.
func (s *Spreadsheet) begin() snapshot {
	return snapshot{base: s.base, state: s.state.clone()}
}

func (s *Spreadsheet) commit(before snapshot, entry string) {
	before.entry = entry
	s.undo = append(s.undo, before)
	s.redo = nil
	s.log = append(s.log, entry)
	s.version++
}

// Undo reverts the most recent operator. It returns the undone history
// entry, or an error when there is nothing to undo.
func (s *Spreadsheet) Undo() (string, error) {
	if len(s.undo) == 0 {
		return "", fmt.Errorf("core: nothing to undo")
	}
	top := s.undo[len(s.undo)-1]
	s.undo = s.undo[:len(s.undo)-1]
	s.redo = append(s.redo, snapshot{base: s.base, state: s.state, entry: top.entry})
	s.base = top.base
	s.state = top.state
	if len(s.log) > 0 {
		s.log = s.log[:len(s.log)-1]
	}
	s.version++
	return top.entry, nil
}

// Redo re-applies the most recently undone operator.
func (s *Spreadsheet) Redo() (string, error) {
	if len(s.redo) == 0 {
		return "", fmt.Errorf("core: nothing to redo")
	}
	top := s.redo[len(s.redo)-1]
	s.redo = s.redo[:len(s.redo)-1]
	s.undo = append(s.undo, snapshot{base: s.base, state: s.state, entry: top.entry})
	s.base = top.base
	s.state = top.state
	s.log = append(s.log, top.entry)
	s.version++
	return top.entry, nil
}

// UndoDepth returns how many operators can currently be undone.
func (s *Spreadsheet) UndoDepth() int { return len(s.undo) }

// RedoDepth returns how many undone operators can currently be re-applied.
func (s *Spreadsheet) RedoDepth() int { return len(s.redo) }

// SetVersion overrides the operator counter. RestoreState derives the
// version from the persisted history log, but undo/redo advance the counter
// past len(log); recovery paths that know the true counter (the WAL
// checkpoint records it) use this to restore it exactly.
func (s *Spreadsheet) SetVersion(v int) { s.version = v }

// Clone deep-copies the spreadsheet (sharing the immutable base relation).
func (s *Spreadsheet) Clone() *Spreadsheet {
	return &Spreadsheet{
		name:    s.name,
		base:    s.base,
		state:   s.state.clone(),
		version: s.version,
		log:     append([]string(nil), s.log...),
	}
}

// isHidden reports whether the base column is projected out.
func (q *queryState) isHidden(col string) bool {
	for _, h := range q.hidden {
		if strings.EqualFold(h, col) {
			return true
		}
	}
	return false
}

// findComputed returns the computed column definition by name, or nil.
func (q *queryState) findComputed(name string) *ComputedColumn {
	for _, c := range q.computed {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

// cumulativeBasis returns the paper's g_{level} (1-based; level 1 is the
// root, whose basis is empty — the paper's {NULL}).
func (q *queryState) cumulativeBasis(level int) []string {
	var out []string
	for i := 0; i < level-1 && i < len(q.grouping); i++ {
		out = append(out, q.grouping[i].Rel...)
	}
	return out
}

// levelCount returns |G|: the number of grouping levels including the root.
func (q *queryState) levelCount() int { return len(q.grouping) + 1 }

// inAnyBasis reports whether col appears in any grouping basis.
func (q *queryState) inAnyBasis(col string) bool {
	for _, g := range q.grouping {
		for _, a := range g.Rel {
			if strings.EqualFold(a, col) {
				return true
			}
		}
	}
	return false
}

// VisibleSchema returns the schema the user sees: base columns that are not
// hidden, in base order, followed by computed columns in creation order.
func (s *Spreadsheet) VisibleSchema() relation.Schema {
	var out relation.Schema
	for _, c := range s.base.Schema {
		if !s.state.isHidden(c.Name) {
			out = append(out, c)
		}
	}
	for _, c := range s.state.computed {
		out = append(out, relation.Column{Name: c.Name, Kind: c.ResultKind})
	}
	return out
}

// columnKind resolves the kind of any referencable column: base columns
// (hidden ones included — predicates attached to a column survive its
// projection, Sec. V-A) and computed columns.
func (s *Spreadsheet) columnKind(name string) (value.Kind, bool) {
	if i := s.base.Schema.IndexOf(name); i >= 0 {
		return s.base.Schema[i].Kind, true
	}
	if c := s.state.findComputed(name); c != nil {
		return c.ResultKind, true
	}
	return value.KindNull, false
}

// hasColumn reports whether name resolves to a base or computed column.
func (s *Spreadsheet) hasColumn(name string) bool {
	_, ok := s.columnKind(name)
	return ok
}

// visible reports whether the column is currently displayed.
func (s *Spreadsheet) visible(name string) bool {
	if s.state.findComputed(name) != nil {
		return true
	}
	return s.base.Schema.Has(name) && !s.state.isHidden(name)
}

// aggDepth computes the paper-motivated evaluation depth of a column: base
// columns are depth 0, a formula column has the max depth of its inputs,
// and an aggregate column is one deeper than its input. Selections evaluate
// at the max depth of their referenced columns; see Evaluate.
func (s *Spreadsheet) aggDepth(col string, seen map[string]bool) (int, error) {
	if s.base.Schema.Has(col) {
		return 0, nil
	}
	c := s.state.findComputed(col)
	if c == nil {
		return 0, fmt.Errorf("core: unknown column %q", col)
	}
	key := strings.ToLower(col)
	if seen[key] {
		return 0, fmt.Errorf("core: computed column cycle through %q", col)
	}
	if seen == nil {
		seen = map[string]bool{}
	}
	seen[key] = true
	defer delete(seen, key)
	if c.Kind == KindAggregate {
		d, err := s.aggDepth(c.Input, seen)
		if err != nil {
			return 0, err
		}
		return d + 1, nil
	}
	if c.Kind == KindWindow {
		// A window column is one deeper than its deepest reference: it is
		// computed over the rows surviving the shallower stages, like an
		// aggregate, and formulas over it evaluate later.
		max := 0
		for _, ref := range c.Win.columns() {
			d, err := s.aggDepth(ref, seen)
			if err != nil {
				return 0, err
			}
			if d > max {
				max = d
			}
		}
		return max + 1, nil
	}
	max := 0
	for _, ref := range expr.Columns(c.Formula) {
		d, err := s.aggDepth(ref, seen)
		if err != nil {
			return 0, err
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}

// exprDepth is aggDepth over all columns an expression references.
func (s *Spreadsheet) exprDepth(e expr.Expr) (int, error) {
	max := 0
	for _, col := range expr.Columns(e) {
		d, err := s.aggDepth(col, map[string]bool{})
		if err != nil {
			return 0, err
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Grouping returns a copy of the grouping levels below the root.
func (s *Spreadsheet) Grouping() []GroupLevel {
	out := make([]GroupLevel, len(s.state.grouping))
	for i, g := range s.state.grouping {
		out[i] = GroupLevel{Rel: append([]string(nil), g.Rel...), Dir: g.Dir, By: g.By}
	}
	return out
}

// FinestOrder returns a copy of the finest-level ordering keys.
func (s *Spreadsheet) FinestOrder() []SortKey {
	return append([]SortKey(nil), s.state.finest...)
}

// Selections returns the live σ instances, optionally filtered to those
// referencing the given column (empty column returns all). This is the
// Sec. V-B hook: "the user is given a list of selection predicates
// currently applied to that column".
func (s *Spreadsheet) Selections(column string) []Selection {
	var out []Selection
	for _, sel := range s.state.selections {
		if column == "" || expr.References(sel.Pred, column) {
			out = append(out, sel)
		}
	}
	return out
}

// ComputedColumns returns copies of the computed-column definitions.
func (s *Spreadsheet) ComputedColumns() []ComputedColumn {
	out := make([]ComputedColumn, len(s.state.computed))
	for i, c := range s.state.computed {
		out[i] = *c
	}
	return out
}

// HiddenColumns returns the projected-out base columns.
func (s *Spreadsheet) HiddenColumns() []string {
	return append([]string(nil), s.state.hidden...)
}

// DistinctColumns returns the recorded DE column set (nil when DE is not
// active).
func (s *Spreadsheet) DistinctColumns() []string {
	return append([]string(nil), s.state.distinctOn...)
}
