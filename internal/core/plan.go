package core

import (
	"fmt"
	"time"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
)

// The evaluation pipeline. evaluate() no longer replays the query state in
// one monolithic pass: buildPipeline compiles the state into an ordered
// list of named stage nodes — base materialisation, then per depth d the
// aggregate fills, formula fills and selections of depth d (duplicate
// elimination after the depth-0 selections), then the presentation
// ordering. Each node carries a content fingerprint chained from its
// upstream node's fingerprint and its own operator definition, so a node's
// fingerprint identifies the exact multiset its snapshot holds; the
// snapshot cache (snapcache.go) keys on it, and a mutation that only
// changes stage k leaves every upstream fingerprint — and therefore every
// upstream snapshot — intact. This is the reuse Theorem 2's commutativity
// licenses: operators at different stages commute, so the prefix of the
// replay is a function of the prefix of the definitions alone.

// stageKind classifies pipeline nodes.
type stageKind uint8

const (
	stageBase stageKind = iota
	stageAgg
	stageFormula
	stageSelect
	stageDistinct
	stageOrder
	stageWindow
)

// stageNode is one executable node of the pipeline.
type stageNode struct {
	kind stageKind
	name string // display name, paper glyphs: "η AvgP d1", "σ Year >= 2003"
	fp   uint64 // chained content fingerprint
	rank int    // invalidation rank (snapcache.go)
	run  func(ev *evalCtx, in *stageSnap) (*stageSnap, error)
}

// StageInfo describes one pipeline stage of the most recent evaluation —
// the explain surface shared by the REPL `explain` command and the
// server's /plan endpoint.
type StageInfo struct {
	Name        string        `json:"name"`
	Fingerprint uint64        `json:"fingerprint"`
	Cached      bool          `json:"cached"`
	Rows        int           `json:"rows"`
	Duration    time.Duration `json:"duration"`
}

// EvalPlan is the stage plan of one evaluation. Error carries the failing
// stage's message when the evaluation aborted mid-pipeline (the plan then
// covers the stages reached).
type EvalPlan struct {
	Version int         `json:"version"`
	Stages  []StageInfo `json:"stages"`
	Error   string      `json:"error,omitempty"`
}

// Plan evaluates the sheet (served from the memo when the version is
// unchanged) and returns the resulting stage plan. On an evaluation error
// the plan is still returned when the pipeline was built, with Error set.
func (s *Spreadsheet) Plan() (*EvalPlan, error) {
	_, err := s.Evaluate()
	if s.lastPlan == nil {
		if err == nil {
			err = fmt.Errorf("core: no evaluation plan recorded")
		}
		return nil, err
	}
	out := &EvalPlan{
		Version: s.lastPlan.Version,
		Stages:  append([]StageInfo(nil), s.lastPlan.Stages...),
		Error:   s.lastPlan.Error,
	}
	if err != nil && out.Error == "" {
		out.Error = err.Error()
	}
	return out, nil
}

// Fingerprint chaining shorthands. The mixing discipline lives in
// internal/expr so predicate fingerprints and stage fingerprints cannot
// drift apart.
func fpU(h, x uint64) uint64        { return expr.FingerprintCombine(h, x) }
func fpS(h uint64, s string) uint64 { return expr.FingerprintString(h, s) }

func fpDir(h uint64, desc bool) uint64 {
	if desc {
		return fpU(h, 2)
	}
	return fpU(h, 1)
}

// buildPipeline compiles the current query state into the stage list and
// the evaluation context the stage bodies run against. It performs the
// same stratification and validation the monolithic replay did (computed
// columns and predicates keyed by aggregate depth; cycle and unknown-column
// errors surface here).
func (s *Spreadsheet) buildPipeline() (*evalCtx, []stageNode, error) {
	// Working schema: every base column (hidden ones still participate in
	// predicates) followed by the computed columns, as before.
	work := append(relation.Schema(nil), s.base.Schema...)
	colPos := make(map[int]int, len(s.state.computed)) // computed index → working position
	for ci, c := range s.state.computed {
		colPos[ci] = len(work)
		work = append(work, relation.Column{Name: c.Name, Kind: c.ResultKind})
	}
	ev := &evalCtx{
		s:     s,
		work:  work,
		ix:    work.Index(),
		cols:  s.base.Columns(),
		nBase: len(s.base.Schema),
		width: len(work),
	}
	ev.resolve = func(name string) (int, bool) {
		if i := ev.ix.IndexOf(name); i >= 0 {
			return i, true
		}
		return 0, false
	}

	// Stratify computed columns and selections by depth.
	maxD := 0
	colDepths := make([]int, len(s.state.computed))
	for ci, c := range s.state.computed {
		d, err := s.aggDepth(c.Name, map[string]bool{})
		if err != nil {
			return nil, nil, err
		}
		colDepths[ci] = d
		if d > maxD {
			maxD = d
		}
	}
	selDepth := make([]int, len(s.state.selections))
	for i, sel := range s.state.selections {
		d, err := s.exprDepth(sel.Pred)
		if err != nil {
			return nil, nil, err
		}
		selDepth[i] = d
		if d > maxD {
			maxD = d
		}
	}

	// The base stage's fingerprint seeds the chain: the base generation
	// (bumped whenever the base relation is replaced) plus its row count
	// pin the backing data, so snapshots can never be reused across bases.
	fp := fpU(fpU(fpS(0, "base"), s.baseGen), uint64(s.base.Len()))
	stages := []stageNode{{
		kind: stageBase, name: "base", fp: fp, rank: rankBase(), run: runBase,
	}}

	for d := 0; d <= maxD; d++ {
		// Aggregate columns of depth d see rows surviving selections < d.
		for ci, c := range s.state.computed {
			if c.Kind != KindAggregate || colDepths[ci] != d {
				continue
			}
			fp = fpU(fp, uint64(stageAgg))
			fp = fpS(fp, c.Name)
			fp = fpS(fp, string(c.Agg))
			fp = fpS(fp, c.Input)
			fp = fpU(fp, uint64(c.Level))
			fp = fpU(fp, uint64(c.ResultKind))
			for _, b := range s.state.cumulativeBasis(c.Level) {
				fp = fpS(fp, b)
			}
			stages = append(stages, stageNode{
				kind: stageAgg,
				name: fmt.Sprintf("η %s d%d", c.Name, d),
				fp:   fp,
				rank: rankAgg(d),
				run:  runAggStage(c, colPos[ci]),
			})
		}
		// Window columns of depth d: computed over the rows surviving
		// selections < d, after the depth's aggregates (a window may rank
		// by an aggregate of the same depth's inputs via a shallower
		// column) and before its formulas (which may reference the window).
		for ci, c := range s.state.computed {
			if c.Kind != KindWindow || colDepths[ci] != d {
				continue
			}
			w := c.Win
			fp = fpU(fp, uint64(stageWindow))
			fp = fpS(fp, c.Name)
			fp = fpS(fp, string(w.Func))
			fp = fpS(fp, w.Input)
			fp = fpU(fp, uint64(len(w.PartitionBy)))
			for _, b := range w.PartitionBy {
				fp = fpS(fp, b)
			}
			fp = fpU(fp, uint64(len(w.OrderBy)))
			for _, k := range w.OrderBy {
				fp = fpS(fp, k.Column)
				fp = fpDir(fp, k.Dir == Desc)
			}
			if w.Frame != nil {
				fp = fpS(fp, w.Frame.String())
			}
			fp = fpU(fp, uint64(c.ResultKind))
			stages = append(stages, stageNode{
				kind: stageWindow,
				name: fmt.Sprintf("ω %s d%d", c.Name, d),
				fp:   fp,
				rank: rankWindow(d),
				run:  runWindowStage(c, colPos[ci]),
			})
		}
		// Formula columns of depth d, in creation order (later formulas
		// may reference earlier ones of the same depth).
		for ci, c := range s.state.computed {
			if c.Kind != KindFormula || colDepths[ci] != d {
				continue
			}
			fp = fpU(fp, uint64(stageFormula))
			fp = fpS(fp, c.Name)
			fp = fpU(fp, expr.Fingerprint(c.Formula))
			fp = fpU(fp, uint64(c.ResultKind))
			stages = append(stages, stageNode{
				kind: stageFormula,
				name: fmt.Sprintf("θ %s d%d", c.Name, d),
				fp:   fp,
				rank: rankFormula(d),
				run:  runFormulaStage(c, colPos[ci]),
			})
		}
		// Selections of depth d, in state order.
		for i, sel := range s.state.selections {
			if selDepth[i] != d {
				continue
			}
			fp = fpU(fp, uint64(stageSelect))
			fp = fpU(fp, expr.Fingerprint(sel.Pred))
			stages = append(stages, stageNode{
				kind: stageSelect,
				name: fmt.Sprintf("σ %s d%d", sel.Pred.SQL(), d),
				fp:   fp,
				rank: rankSelect(d),
				run:  runSelectStage(sel),
			})
		}
		// Duplicate elimination at the end of stage 0 (DESIGN.md §3.2).
		if d == 0 && s.state.distinctOn != nil {
			fp = fpU(fp, uint64(stageDistinct))
			fp = fpU(fp, uint64(len(s.state.distinctOn)))
			for _, col := range s.state.distinctOn {
				fp = fpS(fp, col)
			}
			cols := append([]string(nil), s.state.distinctOn...)
			stages = append(stages, stageNode{
				kind: stageDistinct,
				name: "δ",
				fp:   fp,
				rank: rankDistinct(),
				run:  runDistinctStage(cols),
			})
		}
	}

	// Presentation order: each grouping level's relative basis in the
	// level's direction, then the finest-level keys — the Sec. II-A remark
	// that any recursive grouping can be emulated by one ordering.
	keys := s.sortKeys()
	if len(keys) > 0 {
		fp = fpU(fp, uint64(stageOrder))
		for _, k := range keys {
			fp = fpS(fp, k.Column)
			fp = fpDir(fp, k.Desc)
		}
		stages = append(stages, stageNode{
			kind: stageOrder,
			name: "λ",
			fp:   fp,
			rank: rankOrder,
			run:  runOrderStage(keys),
		})
	}
	return ev, stages, nil
}

// sortKeys derives the presentation sort keys from the grouping and
// finest-order state.
func (s *Spreadsheet) sortKeys() []relation.SortKey {
	var keys []relation.SortKey
	for _, g := range s.state.grouping {
		if g.By != "" {
			// OrderGroupsBy extension: groups sort by a per-group-constant
			// column, with the relative basis as the tiebreak.
			keys = append(keys, relation.SortKey{Column: g.By, Desc: g.Dir == Desc})
			for _, a := range g.Rel {
				keys = append(keys, relation.SortKey{Column: a})
			}
			continue
		}
		for _, a := range g.Rel {
			keys = append(keys, relation.SortKey{Column: a, Desc: g.Dir == Desc})
		}
	}
	for _, k := range s.state.finest {
		keys = append(keys, relation.SortKey{Column: k.Column, Desc: k.Dir == Desc})
	}
	return keys
}
