package core

import (
	"fmt"
	"strings"
	"time"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
)

// The evaluation pipeline. buildPipeline compiles the query state into an
// ordered list of named stage nodes — base materialisation, then per depth d
// the aggregate fills, window fills, formula fills and selections of depth d
// (duplicate elimination after the depth-0 selections), then the
// presentation ordering.
//
// Fingerprints are DAG-keyed, not chained linearly: each stage's fingerprint
// folds in exactly the inputs its artifact is derived from — the row-stage
// fingerprint at its depth's entry (the multiset it reads) plus the
// content fingerprints of the columns it references (expr.Deps names them) —
// and nothing else. A mutation therefore changes the fingerprints of
// precisely the stages reachable from it in the dependency graph: editing
// one predicate leaves sibling predicates at the same depth, and every
// column stage not referencing it, with intact fingerprints and live cache
// entries. This is Theorem 2's commutativity made operational — operators
// that commute share no dependency edge, so neither's artifact keys on the
// other.
//
// Column fingerprints (colFPs) deliberately exclude the column's *name*:
// they key the definition's content, so two identically defined columns
// share one artifact (the apply closure reattaches each stage's own name),
// and the same keys can later address a cross-session artifact catalog.
//
// Stable node IDs tie the pipeline to the product dependency surface
// (deps.go): "base"; "col:<name>" for η/ω/θ columns; "sel:<id>" for σ
// predicates; "and:d<depth>" for the per-depth σ conjunction; "distinct";
// "order". Graph-only leaves use "basecol:<name>". Plan() reports the same
// IDs, so /plan and /deps cross-reference.
//
// Selections at one depth split into independent parts: with k ≥ 2
// predicates at depth d, each σ filters the depth's entry multiset on its
// own (its artifact is reusable no matter what its siblings do) and one ∧
// stage intersects the survivor sets in entry order — bit-identical to
// chained filtering, since filters commute and entry order is preserved. A
// part whose predicate errors reports no artifact; the ∧ stage then replays
// the depth's predicates chained sequentially, reproducing the exact
// first-error-or-success of the pre-split pipeline (a row that errors under
// an independent part may be filtered away by an earlier sibling in the
// chained order). Depths with a single predicate emit a plain σ stage and
// no ∧.

// stageKind classifies pipeline nodes.
type stageKind uint8

const (
	stageBase stageKind = iota
	stageAgg
	stageFormula
	stageSelect
	stageDistinct
	stageOrder
	stageWindow
	stageCombine
)

// String names the kind for the dependency surface.
func (k stageKind) String() string {
	switch k {
	case stageBase:
		return "base"
	case stageAgg:
		return "aggregate"
	case stageFormula:
		return "formula"
	case stageSelect:
		return "selection"
	case stageDistinct:
		return "distinct"
	case stageOrder:
		return "order"
	case stageWindow:
		return "window"
	case stageCombine:
		return "combine"
	}
	return "unknown"
}

// stageNode is one executable node of the pipeline.
type stageNode struct {
	kind  stageKind
	id    string   // stable node ID, shared by Plan() and Deps()
	name  string   // display name, paper glyphs: "η AvgP d1", "σ Year >= 2003"
	fp    uint64   // DAG-keyed content fingerprint
	rank  int      // legacy coarse rank (for the coarse_saved metric only)
	atoms []string // dependency-atom closure (invalidation alphabet)
	deps  []string // direct dependency node IDs (graph edges point here → id)
	run   func(ev *evalCtx, cur *stageSnap) (*stageArtifact, error)
	apply func(cur *stageSnap, art *stageArtifact) *stageSnap
}

// StageInfo describes one pipeline stage of the most recent evaluation —
// the explain surface shared by the REPL `explain` command and the
// server's /plan endpoint. ID is the stable node ID also used by Deps().
type StageInfo struct {
	ID          string        `json:"id"`
	Name        string        `json:"name"`
	Fingerprint uint64        `json:"fingerprint"`
	Cached      bool          `json:"cached"`
	Rows        int           `json:"rows"`
	Duration    time.Duration `json:"duration"`
}

// EvalPlan is the stage plan of one evaluation. Error carries the failing
// stage's message when the evaluation aborted mid-pipeline (the plan then
// covers the stages reached).
type EvalPlan struct {
	Version int         `json:"version"`
	Stages  []StageInfo `json:"stages"`
	Error   string      `json:"error,omitempty"`
}

// Plan evaluates the sheet (served from the memo when the version is
// unchanged) and returns the resulting stage plan. On an evaluation error
// the plan is still returned when the pipeline was built, with Error set.
func (s *Spreadsheet) Plan() (*EvalPlan, error) {
	_, err := s.Evaluate()
	if s.lastPlan == nil {
		if err == nil {
			err = fmt.Errorf("core: no evaluation plan recorded")
		}
		return nil, err
	}
	out := &EvalPlan{
		Version: s.lastPlan.Version,
		Stages:  append([]StageInfo(nil), s.lastPlan.Stages...),
		Error:   s.lastPlan.Error,
	}
	if err != nil && out.Error == "" {
		out.Error = err.Error()
	}
	return out, nil
}

// Fingerprint chaining shorthands. The mixing discipline lives in
// internal/expr so predicate fingerprints and stage fingerprints cannot
// drift apart.
func fpU(h, x uint64) uint64        { return expr.FingerprintCombine(h, x) }
func fpS(h uint64, s string) uint64 { return expr.FingerprintString(h, s) }

func fpDir(h uint64, desc bool) uint64 {
	if desc {
		return fpU(h, 2)
	}
	return fpU(h, 1)
}

// atomUnion merges atom sets, deduplicating while preserving first-seen
// order. It always returns a fresh slice so callers can keep extending
// their running sets without aliasing a stage's stored atoms.
func atomUnion(sets ...[]string) []string {
	var out []string
	for _, set := range sets {
		for _, a := range set {
			found := false
			for _, b := range out {
				if a == b {
					found = true
					break
				}
			}
			if !found {
				out = append(out, a)
			}
		}
	}
	return out
}

// selBlock is the per-evaluation scratch tying a depth's σ parts to their ∧
// stage: part stages record their artifacts here (on hit and on recompute
// alike — the ∧ must never re-read the cache, a part could be evicted
// mid-evaluation) and the ∧ stage intersects them. A nil artifact marks a
// part whose predicate errored; the ∧ then falls back to chained replay.
type selBlock struct {
	sels []Selection
	arts []*stageArtifact
}

// rowArtifact adapts a row-stage body (σ, δ, λ, base): the artifact owns the
// stage's surviving index vector.
func rowArtifact(inner func(*evalCtx, *stageSnap) (*stageSnap, error)) func(*evalCtx, *stageSnap) (*stageArtifact, error) {
	return func(ev *evalCtx, cur *stageSnap) (*stageArtifact, error) {
		next, err := inner(ev, cur)
		if err != nil {
			return nil, err
		}
		return &stageArtifact{idx: next.idx, ownBytes: next.ownBytes}, nil
	}
}

// colArtifact adapts a column-stage body (η, ω, θ): the artifact owns the
// freshly filled column vector, name-agnostically.
func colArtifact(inner func(*evalCtx, *stageSnap) (*stageSnap, error)) func(*evalCtx, *stageSnap) (*stageArtifact, error) {
	return func(ev *evalCtx, cur *stageSnap) (*stageArtifact, error) {
		next, err := inner(ev, cur)
		if err != nil {
			return nil, err
		}
		return &stageArtifact{col: next.cols[len(next.cols)-1].col, ownBytes: next.ownBytes}, nil
	}
}

// applyRow folds a row artifact into the running snapshot.
func applyRow(cur *stageSnap, art *stageArtifact) *stageSnap {
	if cur == nil { // the base stage starts the snapshot chain
		return &stageSnap{idx: art.idx}
	}
	next := cur.extend()
	next.idx = art.idx
	return next
}

// applyCol folds a column artifact into the running snapshot under the
// stage's own output name (artifacts are name-agnostic).
func applyCol(name string) func(*stageSnap, *stageArtifact) *stageSnap {
	return func(cur *stageSnap, art *stageArtifact) *stageSnap {
		next := cur.extend()
		next.cols = append(next.cols, stageCol{name: name, col: art.col})
		return next
	}
}

// runSelPart runs one σ part against the depth's entry snapshot. A
// predicate error is swallowed here — the part reports no artifact and the
// depth's ∧ stage replays the chain to reproduce the exact sequential
// error-or-success.
func runSelPart(blk *selBlock, i int) func(*evalCtx, *stageSnap) (*stageArtifact, error) {
	inner := runSelectStage(blk.sels[i])
	return func(ev *evalCtx, cur *stageSnap) (*stageArtifact, error) {
		next, err := inner(ev, cur)
		if err != nil {
			return nil, nil
		}
		return &stageArtifact{idx: next.idx, ownBytes: next.ownBytes}, nil
	}
}

// applySelPart records a part's artifact into the block and leaves the
// running snapshot at the depth's entry, so sibling parts and the ∧ stage
// all read the same multiset.
func applySelPart(blk *selBlock, i int) func(*stageSnap, *stageArtifact) *stageSnap {
	return func(cur *stageSnap, art *stageArtifact) *stageSnap {
		blk.arts[i] = art
		return cur
	}
}

// runSelCombine intersects the block's part artifacts in entry order. Every
// part index vector is a subsequence of the depth's entry vector, so
// iterating the smallest part and keeping rows present in all others yields
// exactly the chained-filter result. A missing part (errored predicate)
// routes through the sequential chained replay instead.
func runSelCombine(blk *selBlock) func(*evalCtx, *stageSnap) (*stageArtifact, error) {
	return func(ev *evalCtx, cur *stageSnap) (*stageArtifact, error) {
		for _, a := range blk.arts {
			if a == nil {
				return runSelChained(ev, cur, blk.sels)
			}
		}
		idx := intersectParts(blk.arts, ev.s.base.Len())
		return &stageArtifact{idx: idx, ownBytes: int64(4 * len(idx))}, nil
	}
}

// runSelChained applies the depth's predicates sequentially from the entry
// snapshot — the pre-split semantics, reproducing the exact first error (or
// the success a commuting-but-erroring part order would have hidden).
func runSelChained(ev *evalCtx, cur *stageSnap, sels []Selection) (*stageArtifact, error) {
	snap := cur
	for _, sel := range sels {
		next, err := runSelectStage(sel)(ev, snap)
		if err != nil {
			return nil, err
		}
		snap = next
	}
	return &stageArtifact{idx: snap.idx, ownBytes: int64(4 * len(snap.idx))}, nil
}

// intersectParts intersects the parts' survivor sets via membership counts
// over base rows, iterating the smallest part (index vectors never hold
// duplicates upstream of λ, so a count of k−1 in the others means "kept by
// every sibling").
func intersectParts(parts []*stageArtifact, nBase int) []int32 {
	small := 0
	for i, p := range parts {
		if len(p.idx) < len(parts[small].idx) {
			small = i
		}
	}
	counts := make([]uint16, nBase)
	for i, p := range parts {
		if i == small {
			continue
		}
		for _, ri := range p.idx {
			counts[ri]++
		}
	}
	want := uint16(len(parts) - 1)
	out := make([]int32, 0, len(parts[small].idx))
	for _, ri := range parts[small].idx {
		if counts[ri] == want {
			out = append(out, ri)
		}
	}
	return out[:len(out):len(out)]
}

// buildPipeline compiles the current query state into the stage list and
// the evaluation context the stage bodies run against. It performs the
// same stratification and validation the monolithic replay did (computed
// columns and predicates keyed by aggregate depth; cycle and unknown-column
// errors surface here), and assembles per-stage fingerprints, dependency
// atoms and graph edges as described at the top of this file.
func (s *Spreadsheet) buildPipeline() (*evalCtx, []stageNode, error) {
	// Working schema: every base column (hidden ones still participate in
	// predicates) followed by the computed columns, as before.
	work := append(relation.Schema(nil), s.base.Schema...)
	colPos := make(map[int]int, len(s.state.computed)) // computed index → working position
	for ci, c := range s.state.computed {
		colPos[ci] = len(work)
		work = append(work, relation.Column{Name: c.Name, Kind: c.ResultKind})
	}
	ev := &evalCtx{
		s:     s,
		work:  work,
		ix:    work.Index(),
		cols:  s.base.Columns(),
		nBase: len(s.base.Schema),
		width: len(work),
	}
	ev.resolve = func(name string) (int, bool) {
		if i := ev.ix.IndexOf(name); i >= 0 {
			return i, true
		}
		return 0, false
	}

	// Stratify computed columns and selections by depth.
	maxD := 0
	colDepths := make([]int, len(s.state.computed))
	for ci, c := range s.state.computed {
		d, err := s.aggDepth(c.Name, map[string]bool{})
		if err != nil {
			return nil, nil, err
		}
		colDepths[ci] = d
		if d > maxD {
			maxD = d
		}
	}
	selDepth := make([]int, len(s.state.selections))
	for i, sel := range s.state.selections {
		d, err := s.exprDepth(sel.Pred)
		if err != nil {
			return nil, nil, err
		}
		selDepth[i] = d
		if d > maxD {
			maxD = d
		}
	}

	// The base fingerprint seeds every chain: the base generation (bumped
	// whenever the base relation is replaced) plus its row count pin the
	// backing data, so artifacts can never be reused across bases.
	baseFP := fpU(fpU(fpS(0, "base"), s.baseGen), uint64(s.base.Len()))

	// Per-column content fingerprints, dependency-atom closures and graph
	// node IDs, built incrementally in emission order (a stage can only
	// reference columns already emitted, or base columns).
	colFPs := make(map[string]uint64, ev.width)
	colAtoms := map[string][]string{}
	colNode := map[string]string{}
	for _, col := range s.base.Schema {
		colFPs[strings.ToLower(col.Name)] = fpS(fpS(baseFP, "basecol"), col.Name)
	}
	refFP := func(name string) uint64 {
		if fp, ok := colFPs[strings.ToLower(name)]; ok {
			return fp
		}
		// Unknown references error at stage runtime; the fingerprint just
		// needs to be deterministic for the dangling name.
		return fpS(fpS(baseFP, "basecol"), name)
	}
	refAtoms := func(refs []string) [][]string {
		out := make([][]string, 0, len(refs))
		for _, r := range refs {
			if a := colAtoms[strings.ToLower(r)]; a != nil {
				out = append(out, a)
			}
		}
		return out
	}
	refNode := func(name string) string {
		lk := strings.ToLower(name)
		if id, ok := colNode[lk]; ok {
			return id
		}
		return "basecol:" + lk
	}
	depList := func(entryID string, refs []string) []string {
		out := []string{entryID}
		for _, r := range refs {
			id := refNode(r)
			dup := false
			for _, have := range out {
				if have == id {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, id)
			}
		}
		return out
	}
	selFP := func(entryFP uint64, pred expr.Expr, refs []string) uint64 {
		fp := fpU(entryFP, uint64(stageSelect))
		fp = fpU(fp, expr.Fingerprint(pred))
		for _, r := range refs {
			fp = fpU(fp, refFP(r))
		}
		return fp
	}

	// rowFP / rowAtoms / rowID track the row-stage spine: only stages that
	// change the surviving multiset (base, σ/∧, δ, λ) advance them. Column
	// stages hang off the spine at their depth's entry.
	rowFP := baseFP
	rowAtoms := []string{"base"}
	rowID := "base"
	stages := []stageNode{{
		kind: stageBase, id: "base", name: "base", fp: baseFP,
		rank: rankBase(), atoms: rowAtoms,
		run: rowArtifact(runBase), apply: applyRow,
	}}

	for d := 0; d <= maxD; d++ {
		entryFP, entryAtoms, entryID := rowFP, rowAtoms, rowID
		// Aggregate columns of depth d see rows surviving selections < d.
		for ci, c := range s.state.computed {
			if c.Kind != KindAggregate || colDepths[ci] != d {
				continue
			}
			basis := s.state.cumulativeBasis(c.Level)
			fp := fpU(entryFP, uint64(stageAgg))
			fp = fpS(fp, string(c.Agg))
			fp = fpS(fp, c.Input)
			fp = fpU(fp, refFP(c.Input))
			fp = fpU(fp, uint64(c.Level))
			fp = fpU(fp, uint64(c.ResultKind))
			fp = fpU(fp, uint64(len(basis)))
			refs := []string{c.Input}
			for _, b := range basis {
				fp = fpS(fp, b)
				fp = fpU(fp, refFP(b))
				refs = append(refs, b)
			}
			lk := strings.ToLower(c.Name)
			id := "col:" + lk
			atoms := atomUnion(append([][]string{entryAtoms}, append(refAtoms(refs), []string{"col:" + lk})...)...)
			colFPs[lk], colAtoms[lk], colNode[lk] = fp, atoms, id
			stages = append(stages, stageNode{
				kind: stageAgg, id: id,
				name: fmt.Sprintf("η %s d%d", c.Name, d),
				fp:   fp, rank: rankAgg(d), atoms: atoms,
				deps: depList(entryID, refs),
				run:  colArtifact(runAggStage(c, colPos[ci])),
				apply: applyCol(c.Name),
			})
		}
		// Window columns of depth d: computed over the rows surviving
		// selections < d, after the depth's aggregates (a window may rank
		// by an aggregate of the same depth's inputs via a shallower
		// column) and before its formulas (which may reference the window).
		for ci, c := range s.state.computed {
			if c.Kind != KindWindow || colDepths[ci] != d {
				continue
			}
			w := c.Win
			fp := fpU(entryFP, uint64(stageWindow))
			fp = fpS(fp, string(w.Func))
			fp = fpS(fp, w.Input)
			if w.Input != "" {
				fp = fpU(fp, refFP(w.Input))
			}
			fp = fpU(fp, uint64(len(w.PartitionBy)))
			for _, b := range w.PartitionBy {
				fp = fpS(fp, b)
				fp = fpU(fp, refFP(b))
			}
			fp = fpU(fp, uint64(len(w.OrderBy)))
			for _, k := range w.OrderBy {
				fp = fpS(fp, k.Column)
				fp = fpDir(fp, k.Dir == Desc)
				fp = fpU(fp, refFP(k.Column))
			}
			if w.Frame != nil {
				fp = fpS(fp, w.Frame.String())
			}
			fp = fpU(fp, uint64(c.ResultKind))
			refs := w.columns()
			lk := strings.ToLower(c.Name)
			id := "col:" + lk
			atoms := atomUnion(append([][]string{entryAtoms}, append(refAtoms(refs), []string{"col:" + lk})...)...)
			colFPs[lk], colAtoms[lk], colNode[lk] = fp, atoms, id
			stages = append(stages, stageNode{
				kind: stageWindow, id: id,
				name: fmt.Sprintf("ω %s d%d", c.Name, d),
				fp:   fp, rank: rankWindow(d), atoms: atoms,
				deps: depList(entryID, refs),
				run:  colArtifact(runWindowStage(c, colPos[ci])),
				apply: applyCol(c.Name),
			})
		}
		// Formula columns of depth d, in creation order (later formulas
		// may reference earlier ones of the same depth).
		for ci, c := range s.state.computed {
			if c.Kind != KindFormula || colDepths[ci] != d {
				continue
			}
			refs := expr.Deps(c.Formula)
			fp := fpU(entryFP, uint64(stageFormula))
			fp = fpU(fp, expr.Fingerprint(c.Formula))
			fp = fpU(fp, uint64(c.ResultKind))
			for _, r := range refs {
				fp = fpU(fp, refFP(r))
			}
			lk := strings.ToLower(c.Name)
			id := "col:" + lk
			atoms := atomUnion(append([][]string{entryAtoms}, append(refAtoms(refs), []string{"col:" + lk})...)...)
			colFPs[lk], colAtoms[lk], colNode[lk] = fp, atoms, id
			stages = append(stages, stageNode{
				kind: stageFormula, id: id,
				name: fmt.Sprintf("θ %s d%d", c.Name, d),
				fp:   fp, rank: rankFormula(d), atoms: atoms,
				deps: depList(entryID, refs),
				run:  colArtifact(runFormulaStage(c, colPos[ci])),
				apply: applyCol(c.Name),
			})
		}
		// Selections of depth d, in state order. One predicate emits a
		// plain σ; two or more emit independent parts plus a ∧ stage.
		var depthSels []Selection
		for i, sel := range s.state.selections {
			if selDepth[i] == d {
				depthSels = append(depthSels, sel)
			}
		}
		selsetAtom := fmt.Sprintf("selset:%d", d)
		switch {
		case len(depthSels) == 1:
			sel := depthSels[0]
			refs := expr.Deps(sel.Pred)
			fp := selFP(entryFP, sel.Pred, refs)
			selAtom := fmt.Sprintf("sel:%d", sel.ID)
			atoms := atomUnion(append([][]string{entryAtoms}, append(refAtoms(refs), []string{selAtom})...)...)
			id := selAtom
			stages = append(stages, stageNode{
				kind: stageSelect, id: id,
				name: fmt.Sprintf("σ %s d%d", sel.Pred.SQL(), d),
				fp:   fp, rank: rankSelect(d), atoms: atoms,
				deps:  depList(entryID, refs),
				run:   rowArtifact(runSelectStage(sel)),
				apply: applyRow,
			})
			rowFP, rowAtoms, rowID = fp, atoms, id
		case len(depthSels) >= 2:
			blk := &selBlock{sels: depthSels, arts: make([]*stageArtifact, len(depthSels))}
			cfp := fpU(entryFP, uint64(stageCombine))
			cfp = fpU(cfp, uint64(len(depthSels)))
			partAtomSets := [][]string{entryAtoms}
			partIDs := make([]string, len(depthSels))
			for i, sel := range depthSels {
				refs := expr.Deps(sel.Pred)
				fp := selFP(entryFP, sel.Pred, refs)
				cfp = fpU(cfp, fp)
				selAtom := fmt.Sprintf("sel:%d", sel.ID)
				atoms := atomUnion(append([][]string{entryAtoms}, append(refAtoms(refs), []string{selAtom})...)...)
				partIDs[i] = selAtom
				partAtomSets = append(partAtomSets, atoms)
				stages = append(stages, stageNode{
					kind: stageSelect, id: selAtom,
					name: fmt.Sprintf("σ %s d%d", sel.Pred.SQL(), d),
					fp:   fp, rank: rankSelect(d), atoms: atoms,
					deps:  depList(entryID, refs),
					run:   runSelPart(blk, i),
					apply: applySelPart(blk, i),
				})
			}
			cid := fmt.Sprintf("and:d%d", d)
			catoms := atomUnion(append(partAtomSets, []string{selsetAtom})...)
			stages = append(stages, stageNode{
				kind: stageCombine, id: cid,
				name: fmt.Sprintf("∧ %dσ d%d", len(depthSels), d),
				fp:   cfp, rank: rankSelect(d), atoms: catoms,
				deps:  partIDs,
				run:   runSelCombine(blk),
				apply: applyRow,
			})
			rowFP, rowAtoms, rowID = cfp, catoms, cid
		}
		// Downstream of this depth's σ block, the row multiset depends on
		// the depth's predicate *set* — adding the first (or another)
		// predicate at this depth must stale everything deeper, even though
		// it leaves the existing parts' own artifacts intact.
		rowAtoms = atomUnion(rowAtoms, []string{selsetAtom})
		// Duplicate elimination at the end of stage 0 (DESIGN.md §3.2).
		if d == 0 {
			if s.state.distinctOn != nil {
				cols := append([]string(nil), s.state.distinctOn...)
				fp := fpU(rowFP, uint64(stageDistinct))
				fp = fpU(fp, uint64(len(cols)))
				for _, col := range cols {
					fp = fpS(fp, col)
					fp = fpU(fp, refFP(col))
				}
				atoms := atomUnion(append([][]string{rowAtoms}, append(refAtoms(cols), []string{"distinct"})...)...)
				stages = append(stages, stageNode{
					kind: stageDistinct, id: "distinct", name: "δ",
					fp: fp, rank: rankDistinct(), atoms: atoms,
					deps:  depList(rowID, cols),
					run:   rowArtifact(runDistinctStage(cols)),
					apply: applyRow,
				})
				rowFP, rowAtoms, rowID = fp, atoms, "distinct"
			}
			// Whether or not δ is active, everything downstream of its slot
			// depends on the DE decision: a first-time Distinct() must stale
			// the deeper stages it will re-shape.
			rowAtoms = atomUnion(rowAtoms, []string{"distinct"})
		}
	}

	// Presentation order: each grouping level's relative basis in the
	// level's direction, then the finest-level keys — the Sec. II-A remark
	// that any recursive grouping can be emulated by one ordering.
	keys := s.sortKeys()
	if len(keys) > 0 {
		fp := fpU(rowFP, uint64(stageOrder))
		refs := make([]string, 0, len(keys))
		for _, k := range keys {
			fp = fpS(fp, k.Column)
			fp = fpDir(fp, k.Desc)
			fp = fpU(fp, refFP(k.Column))
			refs = append(refs, k.Column)
		}
		atoms := atomUnion(append([][]string{rowAtoms}, append(refAtoms(refs), []string{"order"})...)...)
		stages = append(stages, stageNode{
			kind: stageOrder, id: "order", name: "λ",
			fp: fp, rank: rankOrder, atoms: atoms,
			deps:  depList(rowID, refs),
			run:   rowArtifact(runOrderStage(keys)),
			apply: applyRow,
		})
	}
	return ev, stages, nil
}

// sortKeys derives the presentation sort keys from the grouping and
// finest-order state.
func (s *Spreadsheet) sortKeys() []relation.SortKey {
	var keys []relation.SortKey
	for _, g := range s.state.grouping {
		if g.By != "" {
			// OrderGroupsBy extension: groups sort by a per-group-constant
			// column, with the relative basis as the tiebreak.
			keys = append(keys, relation.SortKey{Column: g.By, Desc: g.Dir == Desc})
			for _, a := range g.Rel {
				keys = append(keys, relation.SortKey{Column: a})
			}
			continue
		}
		for _, a := range g.Rel {
			keys = append(keys, relation.SortKey{Column: a, Desc: g.Dir == Desc})
		}
	}
	for _, k := range s.state.finest {
		keys = append(keys, relation.SortKey{Column: k.Column, Desc: k.Dir == Desc})
	}
	return keys
}
