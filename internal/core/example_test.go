package core_test

import (
	"fmt"
	"log"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
)

// Example reproduces the paper's motivating interaction: filter, group,
// aggregate, compare against the aggregate, then modify an earlier step.
func Example() {
	sheet := core.New(dataset.UsedCars())

	// Build the query one direct-manipulation operator at a time.
	yearID, err := sheet.Select("Year = 2005")
	if err != nil {
		log.Fatal(err)
	}
	if err := sheet.GroupBy(core.Asc, "Model"); err != nil {
		log.Fatal(err)
	}
	if _, err := sheet.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		log.Fatal(err)
	}
	res, err := sheet.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2005 cars:", res.Table.Len())

	// Change the year without re-specifying anything else (Theorem 3).
	if err := sheet.ReplaceSelection(yearID, "Year = 2006"); err != nil {
		log.Fatal(err)
	}
	res, err = sheet.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2006 cars:", res.Table.Len())
	// Output:
	// 2005 cars: 4
	// 2006 cars: 5
}

// ExampleSpreadsheet_Evaluate shows the recursive group tree.
func ExampleSpreadsheet_Evaluate() {
	sheet := core.New(dataset.UsedCars())
	if err := sheet.GroupBy(core.Desc, "Model"); err != nil {
		log.Fatal(err)
	}
	if err := sheet.GroupBy(core.Asc, "Year"); err != nil {
		log.Fatal(err)
	}
	res, err := sheet.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	for _, model := range res.Root.Children {
		fmt.Printf("%v: %d cars, %d year groups\n",
			model.Key[0], model.Rows(), len(model.Children))
	}
	// Output:
	// Jetta: 6 cars, 2 year groups
	// Civic: 3 cars, 2 year groups
}

// ExampleSpreadsheet_Suggest shows the contextual menu the interface
// offers for a column (paper Sec. VI).
func ExampleSpreadsheet_Suggest() {
	sheet := core.New(dataset.UsedCars())
	menu, err := sheet.Suggest("Condition")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(menu.Kind, menu.FilterOps)
	// Output:
	// TEXT [= <> LIKE IN IS NULL]
}
