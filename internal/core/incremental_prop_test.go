package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
)

// TestIncrementalMatchesColdReplay is the equivalence property for the
// incremental pipeline: after every operation in a random sequence, the
// warm, snapshot-reusing evaluation must be bit-identical — rendered grid
// and group tree alike — to a cold full replay of the same state
// (Clone() carries no snapshot cache, so it replays from scratch). Run
// under -race with SHEETMUSIQ_PARALLEL_THRESHOLD forced low this also
// exercises the parallel kernels on tiny inputs.
//
// The same sequence also pins graph-exact invalidation's precision bound:
// after every step, the stages actually recomputed must not exceed what
// the pre-graph rank table (linear chaining from the first changed stage)
// would have recomputed — stage_recomputes ≤ stage_recomputes_coarse.
func TestIncrementalMatchesColdReplay(t *testing.T) {
	defer func(old int) { relation.ParallelThreshold = old }(relation.ParallelThreshold)
	relation.ParallelThreshold = 4

	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := New(dataset.RandomCars(300, 100+seed))
			rec0 := obs.Default.CounterValue("core.eval.stage_recomputes")
			coarse0 := obs.Default.CounterValue("core.eval.stage_recomputes_coarse")
			for step := 0; step < 60; step++ {
				op := randomOp(s, rng)
				got, gotErr := s.Evaluate()
				want, wantErr := s.Clone().Evaluate()
				rec := obs.Default.CounterValue("core.eval.stage_recomputes") - rec0
				coarse := obs.Default.CounterValue("core.eval.stage_recomputes_coarse") - coarse0
				if rec > coarse {
					t.Fatalf("step %d after %s: %d stages recomputed, rank table would have recomputed only %d",
						step, op, rec, coarse)
				}
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("step %d after %s: incremental err %v, cold err %v", step, op, gotErr, wantErr)
				}
				if gotErr != nil {
					if gotErr.Error() != wantErr.Error() {
						t.Fatalf("step %d after %s: incremental err %q, cold err %q", step, op, gotErr, wantErr)
					}
					continue
				}
				if got.Render() != want.Render() {
					t.Fatalf("step %d after %s: incremental grid diverged from cold replay", step, op)
				}
				if got.RenderGrouped() != want.RenderGrouped() {
					t.Fatalf("step %d after %s: incremental group tree diverged from cold replay", step, op)
				}
			}
		})
	}
}

// randomOp applies one randomly chosen algebra operation (or modification,
// or undo/redo) to s and returns a label for failure messages. Operation
// errors are deliberately ignored: a rejected op leaves the state
// unchanged, and the equivalence check still has to hold.
func randomOp(s *Spreadsheet, rng *rand.Rand) string {
	cols := []string{"ID", "Model", "Price", "Year", "Mileage", "Condition"}
	numeric := []string{"Price", "Year", "Mileage"}
	preds := []string{
		"Year >= 2004",
		"Price < 20000",
		"Model = 'Jetta'",
		"Condition = 'Good' OR Condition = 'Excellent'",
		"Mileage < 60000 AND Year > 2002",
		"A1 > 10000", // only valid once the aggregate exists
	}
	aggs := []relation.AggFunc{relation.AggSum, relation.AggAvg, relation.AggMin, relation.AggMax, relation.AggCount}
	formulas := []string{
		"Price / 1000",
		"Price - Mileage / 10",
		"Price / (Year - 2004)", // runtime error on Year = 2004 rows
	}
	names := []string{"A1", "A2", "F1", "F2"}

	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	dir := Asc
	if rng.Intn(2) == 1 {
		dir = Desc
	}

	switch rng.Intn(18) {
	case 0:
		p := pick(preds)
		_, _ = s.Select(p)
		return "σ " + p
	case 1:
		id, p := 1+rng.Intn(3), pick(preds)
		_ = s.ReplaceSelection(id, p)
		return fmt.Sprintf("modify #%d %s", id, p)
	case 2:
		id := 1 + rng.Intn(3)
		_ = s.RemoveSelection(id)
		return fmt.Sprintf("drop σ #%d", id)
	case 3:
		c := pick([]string{"Model", "Year", "Condition"})
		_ = s.GroupBy(dir, c)
		return "γ " + c
	case 4:
		_ = s.Ungroup()
		return "ungroup"
	case 5:
		_ = s.ClearGrouping()
		return "clear grouping"
	case 6:
		c := pick(cols)
		_ = s.Sort(c, dir)
		return "λ " + c
	case 7:
		c, lvl := pick(cols), 1+rng.Intn(3)
		_ = s.OrderBy(c, dir, lvl)
		return fmt.Sprintf("τ %s @%d", c, lvl)
	case 8:
		c := pick(cols)
		_ = s.RemoveOrdering(c)
		return "drop τ " + c
	case 9:
		lvl, c := 2+rng.Intn(2), pick(numeric)
		_ = s.OrderGroupsBy(lvl, c, dir)
		return fmt.Sprintf("order groups @%d by %s", lvl, c)
	case 10:
		n, c, lvl := pick(names[:2]), pick(numeric), 1+rng.Intn(3)
		fn := aggs[rng.Intn(len(aggs))]
		_, _ = s.AggregateAs(n, fn, c, lvl)
		return fmt.Sprintf("η %s=%s(%s)@%d", n, fn, c, lvl)
	case 11:
		n, f := pick(names[2:]), pick(formulas)
		_, _ = s.Formula(n, f)
		return fmt.Sprintf("θ %s=%s", n, f)
	case 12:
		n := pick(names)
		_ = s.RemoveComputed(n)
		return "drop " + n
	case 13:
		c := pick(cols)
		if rng.Intn(2) == 0 {
			_ = s.Hide(c)
			return "hide " + c
		}
		_ = s.Reinstate(c)
		return "reinstate " + c
	case 14:
		if rng.Intn(2) == 0 {
			_ = s.Distinct()
			return "δ"
		}
		_ = s.RemoveDistinct()
		return "drop δ"
	case 15:
		if rng.Intn(2) == 0 {
			_ = s.Rename("Mileage", "Miles")
			return "rename Mileage→Miles"
		}
		_ = s.Rename("Miles", "Mileage")
		return "rename Miles→Mileage"
	case 16:
		_, _ = s.Undo()
		return "undo"
	default:
		_, _ = s.Redo()
		return "redo"
	}
}
