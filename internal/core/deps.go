package core

import (
	"strings"
	"time"
)

// The dependency surface: Deps() exposes the evaluation pipeline's exact
// stage/column dependency graph — the same nodes, IDs and edges the
// invalidation machinery keys on (plan.go) — as a product API. The engine
// turns it into dependents/dependencies/impact/path queries, the server
// serves it at /v1/sessions/{id}/deps, and the REPL renders it for the
// `deps` and `impact` commands.

// DepNode is one node of the dependency graph. Stage nodes carry the
// pipeline's display name as Label and join the last evaluation's plan by
// (ID, Fingerprint), so Cached/Rows/Duration reflect the most recent run;
// base-column leaves ("basecol:<name>") have no execution of their own.
type DepNode struct {
	ID          string        `json:"id"`
	Kind        string        `json:"kind"`
	Label       string        `json:"label"`
	Fingerprint uint64        `json:"fingerprint,omitempty"`
	Cached      bool          `json:"cached,omitempty"`
	Rows        int           `json:"rows,omitempty"`
	Duration    time.Duration `json:"duration,omitempty"`
}

// DepEdge is one directed dependency edge: To depends on From, so impact
// flows From → To.
type DepEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// DepsInfo is the full dependency graph of the current query state. Nodes
// are listed leaves first, then stages in pipeline order; edges follow the
// stage order they were emitted in.
type DepsInfo struct {
	Version int       `json:"version"`
	Nodes   []DepNode `json:"nodes"`
	Edges   []DepEdge `json:"edges"`
}

// Deps returns the dependency graph of the current query state. The sheet
// is evaluated first (best effort — the graph of an erroring state is still
// reported as long as the pipeline builds) so stage nodes carry fresh
// cache/row/duration data.
func (s *Spreadsheet) Deps() (*DepsInfo, error) {
	s.Evaluate() // refresh lastPlan; pipeline errors surface below
	_, stages, err := s.buildPipeline()
	if err != nil {
		return nil, err
	}
	info := &DepsInfo{Version: s.version}
	present := map[string]bool{}
	for _, col := range s.base.Schema {
		n := DepNode{ID: "basecol:" + strings.ToLower(col.Name), Kind: "basecol", Label: col.Name}
		info.Nodes = append(info.Nodes, n)
		present[n.ID] = true
	}
	// Join execution data from the last plan by (ID, fingerprint): a stale
	// plan line (the state changed since) must not claim cache standing for
	// a redefined stage.
	type planKey struct {
		id string
		fp uint64
	}
	planned := map[planKey]StageInfo{}
	if s.lastPlan != nil {
		for _, st := range s.lastPlan.Stages {
			planned[planKey{st.ID, st.Fingerprint}] = st
		}
	}
	for _, st := range stages {
		n := DepNode{ID: st.id, Kind: st.kind.String(), Label: st.name, Fingerprint: st.fp}
		if p, ok := planned[planKey{st.id, st.fp}]; ok {
			n.Cached, n.Rows, n.Duration = p.Cached, p.Rows, p.Duration
		}
		info.Nodes = append(info.Nodes, n)
		present[n.ID] = true
	}
	for _, st := range stages {
		for _, from := range st.deps {
			if !present[from] {
				// A dangling reference (a definition naming a column that no
				// longer exists) still shows up as a leaf so the graph is
				// closed over its edges.
				info.Nodes = append(info.Nodes, DepNode{ID: from, Kind: "basecol", Label: from})
				present[from] = true
			}
			info.Edges = append(info.Edges, DepEdge{From: from, To: st.id})
		}
	}
	return info, nil
}
