package core

import (
	"fmt"
	"sort"
)

// Catalog implements the housekeeping operators of Sec. III-C: Save, Open
// and Close over stored spreadsheets. A spreadsheet "can be stored and
// later re-loaded, regardless of the number of operations it went through",
// and binary operators take their second operand from here.
type Catalog struct {
	sheets map[string]*Spreadsheet
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{sheets: map[string]*Spreadsheet{}} }

// Save stores an independent snapshot of the spreadsheet under name,
// overwriting any previous sheet with that name.
func (c *Catalog) Save(name string, s *Spreadsheet) error {
	if name == "" {
		return fmt.Errorf("core: stored spreadsheet needs a name")
	}
	snap := s.Clone()
	snap.SetName(name)
	c.sheets[name] = snap
	return nil
}

// Open returns a working copy of a stored spreadsheet; edits to the copy do
// not affect the stored version until it is saved again.
func (c *Catalog) Open(name string) (*Spreadsheet, error) {
	s, ok := c.sheets[name]
	if !ok {
		return nil, fmt.Errorf("core: no stored spreadsheet %q", name)
	}
	return s.Clone(), nil
}

// Stored returns the stored sheet itself for use as a binary-operator
// operand (read-only by convention).
func (c *Catalog) Stored(name string) (*Spreadsheet, error) {
	s, ok := c.sheets[name]
	if !ok {
		return nil, fmt.Errorf("core: no stored spreadsheet %q", name)
	}
	return s, nil
}

// Close removes a stored spreadsheet.
func (c *Catalog) Close(name string) error {
	if _, ok := c.sheets[name]; !ok {
		return fmt.Errorf("core: no stored spreadsheet %q", name)
	}
	delete(c.sheets, name)
	return nil
}

// Names lists the stored spreadsheets in lexical order (the interface's
// "all stored-relations listed in a pop-up menu").
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.sheets))
	for n := range c.sheets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
