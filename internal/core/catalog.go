package core

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog implements the housekeeping operators of Sec. III-C: Save, Open,
// Close and Rename over stored spreadsheets. A spreadsheet "can be stored
// and later re-loaded, regardless of the number of operations it went
// through", and binary operators take their second operand from here.
//
// The catalog is safe for concurrent use by multiple sessions: the sheet
// map is guarded by an RWMutex, and stored sheets themselves are never
// mutated after publication — Save and Rename insert fresh snapshots whose
// evaluation cache is pre-warmed, so concurrent Stored/Evaluate calls are
// pure reads.
type Catalog struct {
	mu     sync.RWMutex
	sheets map[string]*Spreadsheet
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{sheets: map[string]*Spreadsheet{}} }

// warm pre-computes the snapshot's evaluation cache before the sheet is
// published, so that later concurrent Evaluate calls (e.g. a binary
// operator materialising a Stored operand) never write to the sheet. A
// state that fails to evaluate stays un-warmed; its error path performs no
// writes either, so storing it is still safe.
func warm(s *Spreadsheet) { _, _ = s.Evaluate() }

// Save stores an independent snapshot of the spreadsheet under name,
// overwriting any previous sheet with that name.
func (c *Catalog) Save(name string, s *Spreadsheet) error {
	if name == "" {
		return fmt.Errorf("core: stored spreadsheet needs a name")
	}
	snap := s.Clone()
	snap.SetName(name)
	warm(snap)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sheets[name] = snap
	return nil
}

// Open returns a working copy of a stored spreadsheet; edits to the copy do
// not affect the stored version until it is saved again.
func (c *Catalog) Open(name string) (*Spreadsheet, error) {
	c.mu.RLock()
	s, ok := c.sheets[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no stored spreadsheet %q", name)
	}
	return s.Clone(), nil
}

// Stored returns the stored sheet itself for use as a binary-operator
// operand. The returned sheet is shared: callers must treat it as
// read-only and never invoke mutating operators on it. Evaluate is safe —
// the catalog pre-warms the evaluation cache before publishing, so
// concurrent evaluations of a stored sheet do not write.
func (c *Catalog) Stored(name string) (*Spreadsheet, error) {
	c.mu.RLock()
	s, ok := c.sheets[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: no stored spreadsheet %q", name)
	}
	return s, nil
}

// Close removes a stored spreadsheet. Sheets previously handed out by Open
// or Stored remain valid: Close only unpublishes the name.
func (c *Catalog) Close(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sheets[name]; !ok {
		return fmt.Errorf("core: no stored spreadsheet %q", name)
	}
	delete(c.sheets, name)
	return nil
}

// Rename is the fourth housekeeping operator of Sec. III-C: the stored
// spreadsheet old becomes available under new. The rename installs a fresh
// snapshot (stored sheets are immutable once published), so sheets handed
// out under the old name keep their old name and stay valid.
func (c *Catalog) Rename(old, new string) error {
	if new == "" {
		return fmt.Errorf("core: stored spreadsheet needs a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sheets[old]
	if !ok {
		return fmt.Errorf("core: no stored spreadsheet %q", old)
	}
	if old == new {
		return nil
	}
	if _, taken := c.sheets[new]; taken {
		return fmt.Errorf("core: stored spreadsheet %q already exists", new)
	}
	snap := s.Clone()
	snap.SetName(new)
	warm(snap)
	c.sheets[new] = snap
	delete(c.sheets, old)
	return nil
}

// Names lists the stored spreadsheets in lexical order (the interface's
// "all stored-relations listed in a pop-up menu").
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sheets))
	for n := range c.sheets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports how many spreadsheets are stored.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sheets)
}
