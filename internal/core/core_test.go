package core

import (
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// sheet returns a fresh spreadsheet over the paper's Table I car data.
func sheet() *Spreadsheet { return New(dataset.UsedCars()) }

// tableIDs extracts the ID column of an evaluated result, in display order.
func tableIDs(t *testing.T, s *Spreadsheet) []int64 {
	t.Helper()
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	i := res.Table.Schema.IndexOf("ID")
	if i < 0 {
		t.Fatal("result lost the ID column")
	}
	out := make([]int64, res.Table.Len())
	for r, row := range res.Table.TupleRows() {
		out[r] = row[i].Int()
	}
	return out
}

func wantIDs(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count = %d, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d (%v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

// paperSheet builds the Sec. III running configuration: grouped by Model
// (DESC) then Year (ASC), ordered by Price (ASC) inside the finest groups.
func paperSheet(t *testing.T) *Spreadsheet {
	t.Helper()
	s := sheet()
	if err := s.GroupBy(Desc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPaperTableI(t *testing.T) {
	// The base spreadsheet presents Table I unchanged, in insertion order.
	wantIDs(t, tableIDs(t, sheet()), 304, 872, 901, 423, 723, 725, 132, 879, 322)
}

func TestPaperTableII(t *testing.T) {
	// Example 1: adding a Condition grouping level below (Model, Year)
	// produces exactly Table II's row order.
	s := paperSheet(t)
	if err := s.GroupBy(Asc, "Condition"); err != nil {
		t.Fatal(err)
	}
	wantIDs(t, tableIDs(t, s), 872, 901, 304, 723, 725, 423, 132, 879, 322)
}

func TestPaperTableIII(t *testing.T) {
	// η(avg, Price, level 3) repeats the group average per row (Table III).
	s := paperSheet(t)
	name, err := s.Aggregate(relation.AggAvg, "Price", 3)
	if err != nil {
		t.Fatal(err)
	}
	if name != "Avg_Price" {
		t.Fatalf("aggregate column name = %q, want Avg_Price", name)
	}
	if err := s.Hide("Condition"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Schema.Names(); strings.Join(got, ",") != "ID,Model,Price,Year,Mileage,Avg_Price" {
		t.Fatalf("visible columns = %v", got)
	}
	wantAvg := []float64{
		15166.666666666666, 15166.666666666666, 15166.666666666666,
		17500, 17500, 17500,
		13500, 15500, 15500,
	}
	ai := res.Table.Schema.IndexOf("Avg_Price")
	for i, row := range res.Table.TupleRows() {
		if row[ai].Float() != wantAvg[i] {
			t.Errorf("row %d Avg_Price = %v, want %v", i, row[ai], wantAvg[i])
		}
	}
	wantIDs(t, tableIDs(t, s), 304, 872, 901, 423, 723, 725, 132, 879, 322)
}

func TestPaperTableIVAndV(t *testing.T) {
	// Sec. V-B: Sam's query, then modifying Year = 2005 to Year = 2006.
	s := sheet()
	yearID, err := s.Select("Year = 2005")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Model = 'Jetta'"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Mileage < 80000"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Condition"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	// Table IV.
	wantIDs(t, tableIDs(t, s), 872, 901, 304)

	// One state change replays the whole history (Theorem 3): Table V.
	if err := s.ReplaceSelection(yearID, "Year = 2006"); err != nil {
		t.Fatal(err)
	}
	wantIDs(t, tableIDs(t, s), 723, 725, 423)
}

func TestSelectionFilters(t *testing.T) {
	s := sheet()
	if _, err := s.Select("Condition = 'Good' OR Condition = 'Excellent'"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Year >= 2005"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 9 {
		t.Fatalf("all 9 cars qualify, got %d", res.Table.Len())
	}
	if _, err := s.Select("Price < 15000"); err != nil {
		t.Fatal(err)
	}
	wantIDs(t, tableIDs(t, s), 304, 132)
}

func TestSelectRejectsBadPredicates(t *testing.T) {
	s := sheet()
	cases := []string{
		"Price",          // not boolean
		"Nope = 1",       // unknown column
		"Model > 5",      // type mismatch
		"SUM(Price) > 1", // aggregate inline
		"Price <",        // syntax error
		"Model LIKE 5",   // LIKE over int
	}
	for _, pred := range cases {
		if _, err := s.Select(pred); err == nil {
			t.Errorf("Select(%q) should fail", pred)
		}
	}
	if s.Version() != 0 {
		t.Error("failed operators must not bump the version")
	}
}

func TestGroupingValidation(t *testing.T) {
	s := sheet()
	if err := s.GroupBy(Asc); err == nil {
		t.Error("empty grouping must fail")
	}
	if err := s.GroupBy(Asc, "Nope"); err == nil {
		t.Error("grouping unknown column must fail")
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Model"); err == nil {
		t.Error("re-grouping an already grouped column must fail")
	}
	if err := s.GroupBy(Asc, "Year", "Year"); err == nil {
		t.Error("duplicate attributes in one τ must fail")
	}
	if _, err := s.Aggregate(relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Avg_Price"); err == nil {
		t.Error("grouping by an aggregate-derived column must fail")
	}
}

func TestGroupingSubtractsFinestOrder(t *testing.T) {
	// Def. 3: o_L = L − grouping-basis.
	s := sheet()
	if err := s.Sort("Year", Asc); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Desc); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	fo := s.FinestOrder()
	if len(fo) != 1 || fo[0].Column != "Price" || fo[0].Dir != Desc {
		t.Fatalf("finest order after τ = %v, want [Price DESC]", fo)
	}
}

func TestOrderingCases(t *testing.T) {
	s := paperSheet(t) // groups: Model desc, Year asc; finest: Price asc

	// Case 3: ordering a grouped attribute at the finest level is a no-op.
	if err := s.OrderBy("Model", Asc, 3); err != nil {
		t.Fatal(err)
	}
	if len(s.FinestOrder()) != 1 {
		t.Fatal("no-op ordering changed the finest order")
	}

	// Finest-level ordering replaces direction for an existing key.
	if err := s.OrderBy("Price", Desc, 3); err != nil {
		t.Fatal(err)
	}
	if fo := s.FinestOrder(); fo[0].Dir != Desc {
		t.Fatal("re-ordering Price should flip its direction")
	}

	// Case 2: ordering level 1 by Model flips the level-2 group direction.
	if err := s.OrderBy("Model", Asc, 1); err != nil {
		t.Fatal(err)
	}
	if g := s.Grouping(); g[0].Dir != Asc {
		t.Fatal("case-2 ordering should flip the group direction")
	}

	// Case 1: ordering level 1 by Price destroys levels 2..n.
	if err := s.OrderBy("Price", Asc, 1); err != nil {
		t.Fatal(err)
	}
	if len(s.Grouping()) != 0 {
		t.Fatal("case-1 ordering should destroy the grouping")
	}
	if fo := s.FinestOrder(); len(fo) != 1 || fo[0].Column != "Price" {
		t.Fatalf("finest order after destroy = %v", fo)
	}
}

func TestOrderingRefusedWhenAggregatesDepend(t *testing.T) {
	s := paperSheet(t)
	if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
		t.Fatal(err)
	}
	// Destroying level 3 while Avg_Price depends on it must be refused.
	if err := s.OrderBy("Price", Asc, 1); err == nil {
		t.Fatal("grouping destruction with dependent aggregates must fail")
	}
	// After removing the aggregate it is allowed.
	if err := s.RemoveComputed("Avg_Price"); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderBy("Price", Asc, 1); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionHidesButKeepsPredicates(t *testing.T) {
	s := sheet()
	if _, err := s.Select("Price < 15000"); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Price"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Schema.Has("Price") {
		t.Fatal("hidden column still visible")
	}
	if res.Table.Len() != 2 {
		t.Fatalf("selection on hidden column must stay active: %d rows", res.Table.Len())
	}
	// Reinstate rewrites history as if π never happened.
	if err := s.Reinstate("Price"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Evaluate()
	if !res.Table.Schema.Has("Price") {
		t.Fatal("reinstate did not restore the column")
	}
}

func TestProjectionValidation(t *testing.T) {
	s := sheet()
	if err := s.Hide("Nope"); err == nil {
		t.Error("hiding unknown column must fail")
	}
	if err := s.Hide("Price"); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Price"); err == nil {
		t.Error("double hide must fail")
	}
	if err := s.Reinstate("Model"); err == nil {
		t.Error("reinstating a visible column must fail")
	}
	for _, c := range []string{"ID", "Model", "Year", "Mileage"} {
		if err := s.Hide(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Hide("Condition"); err == nil {
		t.Error("hiding the last visible column must fail")
	}
}

func TestAggregateLevels(t *testing.T) {
	s := paperSheet(t)
	// Level 1 aggregates across the whole sheet.
	if _, err := s.AggregateAs("AvgAll", relation.AggAvg, "Price", 1); err != nil {
		t.Fatal(err)
	}
	// Level 2 per Model, level 3 per (Model, Year).
	if _, err := s.AggregateAs("AvgModel", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("CntMY", relation.AggCount, "ID", 3); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	get := func(row int, col string) value.Value {
		return res.Table.TupleRows()[row][res.Table.Schema.IndexOf(col)]
	}
	wantAll := (14500.0 + 15000 + 16000 + 17000 + 17500 + 18000 + 13500 + 15000 + 16000) / 9
	for r := 0; r < res.Table.Len(); r++ {
		if got := get(r, "AvgAll").Float(); got != wantAll {
			t.Fatalf("row %d AvgAll = %v, want %v", r, got, wantAll)
		}
	}
	// First row is a Jetta (Model desc): avg Jetta price = 16333.33...
	if got := get(0, "AvgModel").Float(); got != (14500.0+15000+16000+17000+17500+18000)/6 {
		t.Fatalf("AvgModel first row = %v", got)
	}
	if got := get(0, "CntMY").Int(); got != 3 {
		t.Fatalf("CntMY first row = %d, want 3", got)
	}
}

func TestAggregateValidation(t *testing.T) {
	s := sheet()
	if _, err := s.Aggregate(relation.AggAvg, "Nope", 1); err == nil {
		t.Error("aggregating unknown column must fail")
	}
	if _, err := s.Aggregate(relation.AggAvg, "Model", 1); err == nil {
		t.Error("AVG over TEXT must fail")
	}
	if _, err := s.Aggregate(relation.AggAvg, "Price", 2); err == nil {
		t.Error("aggregate at nonexistent level must fail")
	}
	if _, err := s.AggregateAs("Price", relation.AggAvg, "Price", 1); err == nil {
		t.Error("name collision must fail")
	}
	if _, err := s.Aggregate(relation.AggMin, "Model", 1); err != nil {
		t.Errorf("MIN over TEXT is fine: %v", err)
	}
}

func TestAggregateNameUniquified(t *testing.T) {
	s := sheet()
	n1, err := s.Aggregate(relation.AggAvg, "Price", 1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := s.Aggregate(relation.AggAvg, "Price", 1)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == n2 {
		t.Fatalf("duplicate aggregate names: %q", n1)
	}
}

func TestFormulaComputation(t *testing.T) {
	s := sheet()
	name, err := s.Formula("PricePerMile", "Price * 1000 / Mileage")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	i := res.Table.Schema.IndexOf(name)
	// First row: 14500*1000/76000.
	want := 14500000.0 / 76000
	if got := res.Table.TupleRows()[0][i].Float(); got != want {
		t.Fatalf("formula value = %v, want %v", got, want)
	}
	// Formulas can feed selections.
	if _, err := s.Select("PricePerMile > 400"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Evaluate()
	for _, row := range res.Table.TupleRows() {
		if row[i].Float() <= 400 {
			t.Fatalf("selection over formula failed: %v", row)
		}
	}
}

func TestFormulaValidation(t *testing.T) {
	s := sheet()
	if _, err := s.Formula("x", "Nope + 1"); err == nil {
		t.Error("formula over unknown column must fail")
	}
	if _, err := s.Formula("x", "SUM(Price)"); err == nil {
		t.Error("aggregate inside formula must fail")
	}
	if _, err := s.Formula("Model", "Price + 1"); err == nil {
		t.Error("name collision must fail")
	}
	if _, err := s.Formula("", "Price + 1"); err != nil {
		t.Error("auto-named formula should work")
	}
}

func TestFormulaOverAggregate(t *testing.T) {
	// The paper's Fig. 2 flow: compare Price with Avg_Price.
	s := paperSheet(t)
	if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Price < Avg_Price"); err != nil {
		t.Fatal(err)
	}
	// Cars cheaper than their (Model, Year) average: 304 (14500 < 15167),
	// 872 (15000 < 15167), 423 (17000 < 17500), 879 (15000 < 15500).
	wantIDs(t, tableIDs(t, s), 304, 872, 423, 879)
}

func TestHavingStyleSelection(t *testing.T) {
	// HAVING-emulation (Theorem 1, step 5): keep models whose average
	// price exceeds 15500 — all Jetta rows qualify, Civics do not.
	s := sheet()
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("AvgP > 15500"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 6 {
		t.Fatalf("HAVING kept %d rows, want the 6 Jettas", res.Table.Len())
	}
	mi := res.Table.Schema.IndexOf("Model")
	for _, row := range res.Table.TupleRows() {
		if row[mi].Str() != "Jetta" {
			t.Fatalf("non-Jetta row survived: %v", row)
		}
	}
	// The HAVING selection must not retroactively change AvgP (it is a
	// depth-1 predicate over a depth-1 column; SQL HAVING semantics).
	ai := res.Table.Schema.IndexOf("AvgP")
	wantJetta := (14500.0 + 15000 + 16000 + 17000 + 17500 + 18000) / 6
	if got := res.Table.TupleRows()[0][ai].Float(); got != wantJetta {
		t.Fatalf("AvgP = %v, want %v (must not recompute after HAVING)", got, wantJetta)
	}
}

func TestWhereRecomputesAggregates(t *testing.T) {
	// Theorem 2's motivating example: a later base-column selection
	// recomputes earlier aggregates, as if the selection came first.
	s := sheet()
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Year = 2005"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	ai := res.Table.Schema.IndexOf("AvgP")
	want := (14500.0 + 15000 + 16000 + 13500) / 4 // the four 2005 cars
	if got := res.Table.TupleRows()[0][ai].Float(); got != want {
		t.Fatalf("AvgP = %v, want %v (aggregate must track the selection)", got, want)
	}
}

func TestDistinct(t *testing.T) {
	s := sheet()
	// Hide everything but Model, then DE: two rows remain.
	for _, c := range []string{"ID", "Price", "Year", "Mileage", "Condition"} {
		if err := s.Hide(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Distinct(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 2 {
		t.Fatalf("distinct models = %d rows, want 2", res.Table.Len())
	}
	// Aggregates recompute over the deduplicated rows (Def. 13).
	if _, err := s.AggregateAs("N", relation.AggCount, "Model", 1); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Evaluate()
	if got := res.Table.TupleRows()[0][res.Table.Schema.IndexOf("N")].Int(); got != 2 {
		t.Fatalf("COUNT after DE = %d, want 2", got)
	}
	if err := s.RemoveDistinct(); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Evaluate()
	if res.Table.Len() != 9 {
		t.Fatalf("RemoveDistinct should restore all rows, got %d", res.Table.Len())
	}
}

func TestRename(t *testing.T) {
	s := sheet()
	if _, err := s.Select("Price < 16000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("Double", "Price * 2"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("Price", "Cost"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Table.Schema.Has("Cost") || res.Table.Schema.Has("Price") {
		t.Fatal("rename did not take effect in the schema")
	}
	// The selection must keep filtering via the renamed column.
	if res.Table.Len() != 4 {
		t.Fatalf("rows after rename = %d, want 4", res.Table.Len())
	}
	if sels := s.Selections("Cost"); len(sels) != 1 {
		t.Fatal("selection should now reference Cost")
	}
	if err := s.Rename("Nope", "X"); err == nil {
		t.Error("renaming unknown column must fail")
	}
	if err := s.Rename("Cost", "Model"); err == nil {
		t.Error("renaming onto an existing column must fail")
	}
}

func TestGroupTree(t *testing.T) {
	s := paperSheet(t)
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	root := res.Root
	if len(root.Children) != 2 {
		t.Fatalf("level-2 groups = %d, want 2 (Jetta, Civic)", len(root.Children))
	}
	jetta := root.Children[0]
	if jetta.Key[0].Str() != "Jetta" || jetta.Rows() != 6 {
		t.Fatalf("first group = %v with %d rows", jetta.Key, jetta.Rows())
	}
	if len(jetta.Children) != 2 {
		t.Fatalf("Jetta year groups = %d, want 2", len(jetta.Children))
	}
	if y := jetta.Children[0]; y.Key[0].Int() != 2005 || y.Rows() != 3 {
		t.Fatalf("Jetta 2005 group = %v with %d rows", y.Key, y.Rows())
	}
	civic := root.Children[1]
	if civic.Key[0].Str() != "Civic" || civic.Rows() != 3 {
		t.Fatalf("second group = %v with %d rows", civic.Key, civic.Rows())
	}
	// Civic has one 2005 car and two 2006 cars.
	if len(civic.Children) != 2 || civic.Children[0].Rows() != 1 || civic.Children[1].Rows() != 2 {
		t.Fatalf("Civic year groups wrong: %+v", civic.Children)
	}
}

func TestRenderGrouped(t *testing.T) {
	s := paperSheet(t)
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	out := res.RenderGrouped()
	if !strings.Contains(out, "\n\n") {
		t.Error("grouped rendering should separate top-level groups")
	}
	if res.RenderGrouped() == "" || res.Render() == "" {
		t.Error("render output empty")
	}
}

func TestUndoRedo(t *testing.T) {
	s := sheet()
	if _, err := s.Select("Year = 2005"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 2 {
		t.Fatalf("history = %v", s.History())
	}
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if len(s.Grouping()) != 0 {
		t.Fatal("undo did not revert grouping")
	}
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Evaluate()
	if res.Table.Len() != 9 {
		t.Fatal("undo did not revert selection")
	}
	if _, err := s.Undo(); err == nil {
		t.Fatal("undo past the beginning must fail")
	}
	if _, err := s.Redo(); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Evaluate()
	if res.Table.Len() != 4 {
		t.Fatalf("redo did not restore selection: %d rows", res.Table.Len())
	}
	if _, err := s.Redo(); err != nil {
		t.Fatal(err)
	}
	if len(s.Grouping()) != 1 {
		t.Fatal("redo did not restore grouping")
	}
	if _, err := s.Redo(); err == nil {
		t.Fatal("redo past the end must fail")
	}
	// A new operator clears the redo stack.
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Price > 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Redo(); err == nil {
		t.Fatal("redo after a new operator must fail")
	}
}

func TestUndoAfterRename(t *testing.T) {
	s := sheet()
	if _, err := s.Select("Price < 16000"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("Price", "Cost"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	// The snapshot's predicate must still reference Price.
	sels := s.Selections("Price")
	if len(sels) != 1 {
		t.Fatalf("after undoing rename, selection should reference Price again: %v", s.Selections(""))
	}
	if res, err := s.Evaluate(); err != nil || res.Table.Len() != 4 {
		t.Fatalf("evaluate after undo: %v", err)
	}
}

func TestSelectionsByColumn(t *testing.T) {
	s := sheet()
	id1, _ := s.Select("Price < 18000")
	id2, _ := s.Select("Year = 2005 AND Price > 14000")
	if _, err := s.Select("Model = 'Jetta'"); err != nil {
		t.Fatal(err)
	}
	got := s.Selections("Price")
	if len(got) != 2 || got[0].ID != id1 || got[1].ID != id2 {
		t.Fatalf("Selections(Price) = %v", got)
	}
	if all := s.Selections(""); len(all) != 3 {
		t.Fatalf("Selections(\"\") = %v", all)
	}
}

func TestVersionCounting(t *testing.T) {
	s := sheet()
	if s.Version() != 0 {
		t.Fatal("base spreadsheet is version 0")
	}
	if _, err := s.Select("Year = 2005"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Fatalf("version = %d, want 2", s.Version())
	}
}

func TestEmptyRelationEvaluates(t *testing.T) {
	empty := relation.New("empty", dataset.CarSchema())
	s := New(empty)
	if _, err := s.Select("Price < 10"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Aggregate(relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 0 || len(res.Root.Children) != 0 {
		t.Fatal("empty relation should evaluate to an empty result")
	}
}
