package theorem1

import (
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/value"
)

// verify compiles the query through Theorem 1's construction and requires
// the collapsed algebra result to match the SQL engine exactly (values;
// row sets compared after sorting both sides identically when the query
// has no ORDER BY).
func verify(t *testing.T, query string) *Program {
	t.Helper()
	base := dataset.UsedCars()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	prog, err := Compile(base, stmt)
	if err != nil {
		t.Fatalf("compile %q: %v", query, err)
	}
	got, err := prog.Collapse()
	if err != nil {
		t.Fatalf("collapse %q: %v", query, err)
	}
	db := sql.NewDB()
	db.Register(dataset.UsedCars())
	want, err := db.Query(query)
	if err != nil {
		t.Fatalf("reference %q: %v", query, err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%q: algebra %d rows vs SQL %d rows\nalgebra:\n%s\nsql:\n%s",
			query, got.Len(), want.Len(), got.String(), want.String())
	}
	ordered := len(stmt.OrderBy) > 0
	if !ordered {
		keys := make([]relation.SortKey, len(got.Schema))
		for i, c := range got.Schema {
			keys[i] = relation.SortKey{Column: c.Name}
		}
		if err := got.Sort(keys); err != nil {
			t.Fatal(err)
		}
		wkeys := make([]relation.SortKey, len(want.Schema))
		for i, c := range want.Schema {
			wkeys[i] = relation.SortKey{Column: c.Name}
		}
		wc := want.Clone()
		if err := wc.Sort(wkeys); err != nil {
			t.Fatal(err)
		}
		want = wc
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !value.Equal(got.Rows[i][j], want.Rows[i][j]) {
				t.Fatalf("%q row %d col %d: algebra %v vs SQL %v\nalgebra:\n%s\nsql:\n%s",
					query, i, j, got.Rows[i][j], want.Rows[i][j], got.String(), want.String())
			}
		}
	}
	return prog
}

func TestTheorem1PlainSelection(t *testing.T) {
	prog := verify(t, "SELECT ID, Model, Price FROM cars WHERE Year = 2005 AND Price < 15500 ORDER BY Price")
	if len(prog.Log) == 0 || !strings.HasPrefix(prog.Log[0], "step 2") {
		t.Fatalf("log = %v", prog.Log)
	}
}

func TestTheorem1GroupingAggregation(t *testing.T) {
	prog := verify(t, "SELECT Model, AVG(Price) AS avg_price, COUNT(*) AS n FROM cars GROUP BY Model ORDER BY Model")
	if len(prog.GroupCols) != 1 || prog.GroupCols[0] != "Model" {
		t.Fatalf("group cols = %v", prog.GroupCols)
	}
	joined := strings.Join(prog.Log, "\n")
	for _, step := range []string{"step 3: τ Model", "step 4: η AVG(Price)", "step 7: π"} {
		if !strings.Contains(joined, step) {
			t.Fatalf("log missing %q:\n%s", step, joined)
		}
	}
}

func TestTheorem1Having(t *testing.T) {
	verify(t, "SELECT Model, AVG(Price) AS ap FROM cars GROUP BY Model HAVING AVG(Price) > 15500 ORDER BY Model")
}

func TestTheorem1MultiLevelGrouping(t *testing.T) {
	verify(t, "SELECT Model, Year, MIN(Price) AS lo, MAX(Price) AS hi FROM cars GROUP BY Model, Year ORDER BY Model, Year")
}

func TestTheorem1AggregateOverExpression(t *testing.T) {
	verify(t, "SELECT Model, SUM(Price * 2) AS s FROM cars GROUP BY Model ORDER BY Model")
}

func TestTheorem1ExpressionOverAggregates(t *testing.T) {
	verify(t, "SELECT Model, SUM(Price) / COUNT(*) AS manual_avg FROM cars GROUP BY Model ORDER BY Model")
}

func TestTheorem1OrderByAggregate(t *testing.T) {
	// ORDER BY over the aggregate exercises the OrderGroupsBy extension.
	prog := verify(t, "SELECT Model, SUM(Price) AS total FROM cars GROUP BY Model ORDER BY SUM(Price) DESC")
	res, err := prog.Collapse()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "Jetta" {
		t.Fatalf("highest-revenue model first, got %v", res.Rows[0])
	}
}

func TestTheorem1GroupByExpression(t *testing.T) {
	verify(t, "SELECT Year % 2 AS parity, COUNT(*) AS n FROM cars GROUP BY Year % 2 ORDER BY parity")
}

func TestTheorem1WholeSheetAggregate(t *testing.T) {
	verify(t, "SELECT COUNT(*) AS n, AVG(Price) AS ap, MIN(Mileage) AS lo FROM cars WHERE Condition = 'Good'")
}

func TestTheorem1OrderByDirectionOnGroupColumn(t *testing.T) {
	verify(t, "SELECT Model, COUNT(*) AS n FROM cars GROUP BY Model ORDER BY Model DESC")
}

func TestTheorem1CompileRejectsNonCore(t *testing.T) {
	base := dataset.UsedCars()
	bad := []string{
		"SELECT DISTINCT Model FROM cars",                        // DISTINCT
		"SELECT Model FROM cars LIMIT 3",                         // LIMIT
		"SELECT * FROM cars",                                     // star
		"SELECT c.ID FROM cars c JOIN cars d ON c.ID = d.ID",     // join (views handle step 1)
		"SELECT ID FROM trucks",                                  // wrong base
		"SELECT ID FROM cars WHERE Price > (SELECT 1 FROM cars)", // nesting
		"SELECT ID FROM cars WHERE SUM(Price) > 1",               // aggregate in WHERE
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := Compile(base, stmt); err == nil {
			t.Errorf("Compile(%q) should fail", q)
		}
	}
}

func TestTheorem1ProgramIsModifiable(t *testing.T) {
	// The compiled program is a live spreadsheet: Sec. V modification
	// applies to it like to any hand-built sheet.
	base := dataset.UsedCars()
	stmt := sql.MustParse("SELECT Model, COUNT(*) AS n FROM cars WHERE Year = 2005 GROUP BY Model ORDER BY Model")
	prog, err := Compile(base, stmt)
	if err != nil {
		t.Fatal(err)
	}
	sels := prog.Sheet.Selections("Year")
	if len(sels) != 1 {
		t.Fatalf("selections = %v", prog.Sheet.Selections(""))
	}
	if err := prog.Sheet.ReplaceSelection(sels[0].ID, "Year = 2006"); err != nil {
		t.Fatal(err)
	}
	res, err := prog.Collapse()
	if err != nil {
		t.Fatal(err)
	}
	// 2006: 3 Jettas + 2 Civics.
	if res.Len() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		want := int64(3)
		if row[0].Str() == "Civic" {
			want = 2
		}
		if row[1].Int() != want {
			t.Fatalf("%v count = %v, want %d", row[0], row[1], want)
		}
	}
}

// TestTheorem1StudyTasks closes the loop on the paper's evaluation: every
// study task's reference SQL compiles through the Theorem 1 construction
// and matches the SQL engine on the study dataset.
func TestTheorem1StudyTasks(t *testing.T) {
	// Local import cycle note: tpch imports core/sql only, so using it here
	// is fine.
	db, tasks := studyFixtures(t)
	for _, task := range tasks {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			view, ok := db.Table(task.ViewName)
			if !ok {
				t.Fatalf("view %q missing", task.ViewName)
			}
			stmt, err := sql.Parse(task.Query)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(view, stmt)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got, err := prog.Collapse()
			if err != nil {
				t.Fatal(err)
			}
			want, err := db.Query(task.Query)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("rows: algebra %d vs SQL %d", got.Len(), want.Len())
			}
			// The task queries all ORDER BY their group columns (or are
			// single-row), so positions align.
			for i := range got.Rows {
				for j := range got.Rows[i] {
					if !value.Equal(got.Rows[i][j], want.Rows[i][j]) {
						t.Fatalf("row %d col %d: %v vs %v", i, j, got.Rows[i][j], want.Rows[i][j])
					}
				}
			}
		})
	}
}

// TestTheorem1Randomized fuzzes core single-block queries over synthetic
// cars: the compiled algebra program must agree with the SQL engine.
func TestTheorem1Randomized(t *testing.T) {
	base := dataset.RandomCars(60, 11)
	db := sql.NewDB()
	db.Register(base)
	wheres := []string{
		"", "WHERE Price < 25000", "WHERE Year >= 2004 AND Mileage < 150000",
		"WHERE Condition IN ('Good','Excellent')", "WHERE Model LIKE '%a%'",
	}
	groups := []struct {
		clause string
		cols   string
	}{
		{"", ""},
		{"GROUP BY Model", "Model"},
		{"GROUP BY Model, Year", "Model, Year"},
		{"GROUP BY Condition", "Condition"},
	}
	aggs := []string{"COUNT(*) AS n", "AVG(Price) AS ap", "SUM(Price) AS sp", "MIN(Mileage) AS lo"}
	havings := []string{"", "HAVING COUNT(*) > 2", "HAVING AVG(Price) > 15000"}
	count := 0
	for _, w := range wheres {
		for _, g := range groups {
			for _, h := range havings {
				if g.clause == "" && h != "" {
					continue
				}
				var sel, order string
				if g.cols != "" {
					sel = g.cols + ", " + aggs[count%len(aggs)]
					order = "ORDER BY " + g.cols
				} else {
					sel = aggs[count%len(aggs)] + ", " + aggs[(count+1)%len(aggs)]
					order = ""
				}
				query := strings.TrimSpace(strings.Join([]string{
					"SELECT " + sel, "FROM cars", w, g.clause, h, order}, " "))
				query = strings.Join(strings.Fields(query), " ")
				count++
				stmt, err := sql.Parse(query)
				if err != nil {
					t.Fatalf("parse %q: %v", query, err)
				}
				prog, err := Compile(base, stmt)
				if err != nil {
					t.Fatalf("compile %q: %v", query, err)
				}
				got, err := prog.Collapse()
				if err != nil {
					t.Fatalf("collapse %q: %v", query, err)
				}
				want, err := db.Exec(stmt)
				if err != nil {
					t.Fatalf("reference %q: %v", query, err)
				}
				if got.Len() != want.Len() {
					t.Fatalf("%q: algebra %d rows vs SQL %d", query, got.Len(), want.Len())
				}
				for i := range got.Rows {
					for j := range got.Rows[i] {
						if !value.Equal(got.Rows[i][j], want.Rows[i][j]) {
							t.Fatalf("%q row %d col %d: %v vs %v\nalgebra:\n%s\nsql:\n%s",
								query, i, j, got.Rows[i][j], want.Rows[i][j], got.String(), want.String())
						}
					}
				}
			}
		}
	}
	if count < 40 {
		t.Fatalf("only %d queries exercised", count)
	}
}
