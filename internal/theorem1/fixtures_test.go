package theorem1

import (
	"testing"

	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/tpch"
)

var (
	fixtureDB    *sql.DB
	fixtureTasks []tpch.Task
)

// studyFixtures lazily generates the study dataset and views once for the
// package.
func studyFixtures(t *testing.T) (*sql.DB, []tpch.Task) {
	t.Helper()
	if fixtureDB == nil {
		tables := tpch.Generate(tpch.DefaultConfig())
		fixtureDB = tpch.BuildDB(tables)
		if err := tpch.BuildViews(fixtureDB); err != nil {
			t.Fatal(err)
		}
		fixtureTasks = tpch.Tasks()
	}
	return fixtureDB, fixtureTasks
}
