// Package theorem1 mechanises the constructive proof of the paper's
// Theorem 1: "for every core SQL single-block query expression there exists
// an equivalent expression in the spreadsheet algebra". Compile turns a
// parsed single-block SELECT into the very operator program the proof
// describes — selection for the WHERE clause (step 2), one grouping level
// per GROUP BY item (step 3), one aggregation column per aggregate
// (step 4), a HAVING selection over those columns (step 5), ordering
// (step 6) and projection (step 7) — and applies it to a fresh spreadsheet.
//
// The paper's proof handles the relation-list by taking products (step 1);
// like the user study itself ("we predefined views for queries involving
// many joins so that users always query a single table"), this compiler
// requires a single FROM table and leaves join materialisation to views.
//
// The package's tests close the loop: for every study task and for fuzzed
// queries, the compiled algebra program's collapsed result equals the SQL
// engine's result — Theorem 1, verified mechanically.
package theorem1

import (
	"fmt"
	"sort"
	"strings"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
)

// Program is the compiled algebra program: the populated spreadsheet plus
// bookkeeping for reading its result back in SQL's one-row-per-group form.
type Program struct {
	Sheet *core.Spreadsheet
	// OutputCols names the spreadsheet columns corresponding to the SQL
	// output columns, in order.
	OutputCols []string
	// GroupCols names the grouping columns (empty for ungrouped queries).
	GroupCols []string
	// Log describes each applied operator, mirroring the proof's steps.
	Log []string

	// aggCols maps an aggregate call's SQL rendering to its η column.
	aggCols map[string]string
}

// Compile applies the Theorem 1 construction to stmt against the base
// relation. The statement must be a core single-block query: one FROM
// table, no DISTINCT, no LIMIT, no subqueries, aggregates only in the
// select list / HAVING / ORDER BY.
func Compile(base *relation.Relation, stmt *sql.SelectStmt) (*Program, error) {
	table, ok := stmt.From.(*sql.TableRef)
	if !ok {
		return nil, fmt.Errorf("theorem1: the construction's step 1 (products) is handled by views; FROM must be a single table")
	}
	if !strings.EqualFold(table.Name, base.Name) {
		return nil, fmt.Errorf("theorem1: statement reads %q, base relation is %q", table.Name, base.Name)
	}
	if stmt.Distinct {
		return nil, fmt.Errorf("theorem1: DISTINCT is outside the core single-block form")
	}
	if stmt.Limit >= 0 {
		return nil, fmt.Errorf("theorem1: LIMIT is outside the core single-block form")
	}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("theorem1: * is not supported; name the output columns")
		}
		if expr.ContainsSubquery(it.Expr) {
			return nil, fmt.Errorf("theorem1: nested queries are exactly what the algebra cannot express")
		}
	}
	if stmt.Where != nil && (expr.ContainsAggregate(stmt.Where) || expr.ContainsSubquery(stmt.Where)) {
		return nil, fmt.Errorf("theorem1: WHERE must be aggregate- and subquery-free")
	}
	if stmt.Having != nil && expr.ContainsSubquery(stmt.Having) {
		return nil, fmt.Errorf("theorem1: nested queries are exactly what the algebra cannot express")
	}

	p := &Program{Sheet: core.New(base), aggCols: map[string]string{}}

	// Step 2: the WHERE clause becomes one selection.
	if stmt.Where != nil {
		if _, err := p.Sheet.SelectExpr(stmt.Where); err != nil {
			return nil, fmt.Errorf("theorem1: step 2: %w", err)
		}
		p.Log = append(p.Log, "step 2: σ "+stmt.Where.SQL())
	}

	// Step 3: one grouping level per GROUP BY item. The paper's proof
	// takes the items left to right, but the recursive grouping then
	// dictates presentation order; to honour the ORDER BY clause the
	// grouping levels whose items appear in ORDER BY come first, in ORDER
	// BY sequence (a detail the proof glosses over). Expression items
	// first materialise as formula columns.
	groupItems := orderAlignedGroupItems(stmt)
	for _, g := range groupItems {
		col, err := p.columnFor(g, "")
		if err != nil {
			return nil, fmt.Errorf("theorem1: step 3: %w", err)
		}
		if err := p.Sheet.GroupBy(core.Asc, col); err != nil {
			return nil, fmt.Errorf("theorem1: step 3: %w", err)
		}
		p.GroupCols = append(p.GroupCols, col)
		p.Log = append(p.Log, "step 3: τ "+col)
	}
	finestLevel := len(p.GroupCols) + 1

	// Step 4: one aggregation column per distinct aggregate call, computed
	// at the finest level ("in SQL, aggregation is computed over the
	// finest level").
	aggCols := p.aggCols // aggregate SQL -> computed column name
	collect := func(e expr.Expr) error {
		var fail error
		expr.Walk(e, func(n expr.Expr) {
			f, ok := n.(*expr.FuncCall)
			if !ok || !expr.AggregateNames[f.Name] || fail != nil {
				return
			}
			key := f.SQL()
			if _, done := aggCols[key]; done {
				return
			}
			name, err := p.addAggregate(f, finestLevel)
			if err != nil {
				fail = err
				return
			}
			aggCols[key] = name
			p.Log = append(p.Log, "step 4: η "+key+" → "+name)
		})
		return fail
	}
	for _, it := range stmt.Items {
		if err := collect(it.Expr); err != nil {
			return nil, fmt.Errorf("theorem1: step 4: %w", err)
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, fmt.Errorf("theorem1: step 4: %w", err)
		}
	}
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, fmt.Errorf("theorem1: step 4: %w", err)
		}
	}

	// Step 5: the HAVING clause becomes a selection over the aggregation
	// columns.
	if stmt.Having != nil {
		having, err := substituteAggregates(stmt.Having, aggCols)
		if err != nil {
			return nil, fmt.Errorf("theorem1: step 5: %w", err)
		}
		if _, err := p.Sheet.SelectExpr(having); err != nil {
			return nil, fmt.Errorf("theorem1: step 5: %w", err)
		}
		p.Log = append(p.Log, "step 5: σ "+having.SQL())
	}

	// Output columns: group columns, aggregate columns, and formula
	// columns for expressions over them, honouring aliases.
	for _, it := range stmt.Items {
		rewritten, err := substituteAggregates(it.Expr, aggCols)
		if err != nil {
			return nil, err
		}
		col, err := p.columnFor(rewritten, it.Alias)
		if err != nil {
			return nil, err
		}
		p.OutputCols = append(p.OutputCols, col)
	}

	// Step 6: ORDER BY. Keys over grouping columns direct their level;
	// aggregate keys order the groups (the OrderGroupsBy extension);
	// remaining keys order tuples at the finest level.
	for _, o := range stmt.OrderBy {
		rewritten, err := substituteAggregates(o.Expr, aggCols)
		if err != nil {
			return nil, err
		}
		col, err := p.columnFor(rewritten, "")
		if err != nil {
			return nil, fmt.Errorf("theorem1: step 6: %w", err)
		}
		dir := core.Asc
		if o.Desc {
			dir = core.Desc
		}
		if lvl := indexOfFold(p.GroupCols, col); lvl >= 0 {
			// Direction of the level whose relative basis is col.
			if err := p.Sheet.OrderBy(col, dir, lvl+1); err != nil {
				return nil, fmt.Errorf("theorem1: step 6: %w", err)
			}
		} else if isAggCol(aggCols, col) {
			if finestLevel == 1 {
				// A whole-sheet aggregate is constant; ordering by it is
				// a no-op.
				continue
			}
			// The aggregate lives at the finest level; order the sibling
			// groups one level up by its value.
			if err := p.Sheet.OrderGroupsBy(finestLevel-1, col, dir); err != nil {
				return nil, fmt.Errorf("theorem1: step 6: %w", err)
			}
		} else {
			if err := p.Sheet.Sort(col, dir); err != nil {
				return nil, fmt.Errorf("theorem1: step 6: %w", err)
			}
		}
		p.Log = append(p.Log, "step 6: λ "+col+" "+dir.String())
	}

	// Step 7: project out base columns not in the projection list, one at
	// a time.
	keep := map[string]bool{}
	for _, c := range p.OutputCols {
		keep[strings.ToLower(c)] = true
	}
	for _, c := range p.GroupCols {
		keep[strings.ToLower(c)] = true
	}
	for _, c := range base.Schema {
		if keep[strings.ToLower(c.Name)] {
			continue
		}
		// Ordering/selection on hidden columns keeps working; hide freely.
		if err := p.Sheet.Hide(c.Name); err != nil {
			return nil, fmt.Errorf("theorem1: step 7: %w", err)
		}
		p.Log = append(p.Log, "step 7: π "+c.Name)
	}
	return p, nil
}

// orderAlignedGroupItems returns the GROUP BY items, stably reordered so
// items named by ORDER BY (directly or through a select alias) come first
// in ORDER BY sequence.
func orderAlignedGroupItems(stmt *sql.SelectStmt) []expr.Expr {
	alias := map[string]expr.Expr{}
	for _, it := range stmt.Items {
		if it.Alias != "" {
			alias[strings.ToLower(it.Alias)] = it.Expr
		}
	}
	rank := func(g expr.Expr) int {
		gSQL := stripQualifiers(g).SQL()
		for i, o := range stmt.OrderBy {
			oe := o.Expr
			if c, ok := oe.(*expr.ColumnRef); ok {
				if a, ok2 := alias[strings.ToLower(c.Name)]; ok2 {
					oe = a
				}
			}
			if stripQualifiers(oe).SQL() == gSQL {
				return i
			}
		}
		return int(^uint(0) >> 1)
	}
	out := append([]expr.Expr(nil), stmt.GroupBy...)
	sort.SliceStable(out, func(i, j int) bool { return rank(out[i]) < rank(out[j]) })
	return out
}

// columnFor resolves an aggregate-free expression to a spreadsheet column,
// creating a formula column when it is not already a bare column and no
// equivalent formula exists. A non-empty alias renames the result.
func (p *Program) columnFor(e expr.Expr, alias string) (string, error) {
	if c, ok := e.(*expr.ColumnRef); ok {
		name := bareName(c.Name)
		if alias != "" && alias != name {
			if err := p.rename(name, alias); err != nil {
				return "", err
			}
			return alias, nil
		}
		return name, nil
	}
	// Reuse an existing formula column with the identical definition
	// (GROUP BY expressions reappear verbatim in the select list).
	want := stripQualifiers(e).SQL()
	for _, cc := range p.Sheet.ComputedColumns() {
		if cc.Kind == core.KindFormula && cc.Formula.SQL() == want {
			if alias != "" && alias != cc.Name {
				if err := p.rename(cc.Name, alias); err != nil {
					return "", err
				}
				return alias, nil
			}
			return cc.Name, nil
		}
	}
	name, err := p.Sheet.FormulaExpr(alias, stripQualifiers(e))
	if err != nil {
		return "", err
	}
	p.Log = append(p.Log, "θ "+name+" = "+e.SQL())
	return name, nil
}

// rename renames a spreadsheet column and keeps the program's bookkeeping
// in sync.
func (p *Program) rename(old, new string) error {
	if err := p.Sheet.Rename(old, new); err != nil {
		return err
	}
	p.Log = append(p.Log, "rename "+old+" → "+new)
	for i, g := range p.GroupCols {
		if strings.EqualFold(g, old) {
			p.GroupCols[i] = new
		}
	}
	for k, v := range p.aggCols {
		if strings.EqualFold(v, old) {
			p.aggCols[k] = new
		}
	}
	return nil
}

// addAggregate creates the η column for one aggregate call. Aggregates over
// expressions first materialise the argument as a formula column.
func (p *Program) addAggregate(f *expr.FuncCall, level int) (string, error) {
	var fn relation.AggFunc
	switch f.Name {
	case "COUNT":
		fn = relation.AggCount
	case "COUNT_DISTINCT":
		fn = relation.AggCountDistinct
	default:
		fn = relation.AggFunc(f.Name)
	}
	var input string
	if len(f.Args) != 1 {
		return "", fmt.Errorf("%s expects one argument", f.Name)
	}
	if _, isStar := f.Args[0].(*expr.Star); isStar {
		if fn != relation.AggCount {
			return "", fmt.Errorf("only COUNT accepts *")
		}
		// COUNT(*) counts tuples; any always-present column works — the
		// algebra's COUNT counts tuples regardless of NULLs.
		input = p.Sheet.Base().Schema[0].Name
	} else if c, ok := f.Args[0].(*expr.ColumnRef); ok {
		input = bareName(c.Name)
	} else {
		name, err := p.Sheet.FormulaExpr("", stripQualifiers(f.Args[0]))
		if err != nil {
			return "", err
		}
		p.Log = append(p.Log, "θ "+name+" = "+f.Args[0].SQL())
		input = name
	}
	return p.Sheet.AggregateAs("", fn, input, level)
}

// substituteAggregates replaces aggregate calls with references to their
// computed columns.
func substituteAggregates(e expr.Expr, aggCols map[string]string) (expr.Expr, error) {
	if !expr.ContainsAggregate(e) {
		return stripQualifiers(e), nil
	}
	// Rewrite via SQL text: replace each aggregate's rendering with its
	// column name. Renderings are parenthesised and unique, so plain text
	// substitution on the canonical form is unambiguous.
	text := e.SQL()
	for call, col := range aggCols {
		text = strings.ReplaceAll(text, call, col)
	}
	out, err := expr.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("aggregate substitution produced %q: %w", text, err)
	}
	if expr.ContainsAggregate(out) {
		return nil, fmt.Errorf("unsubstituted aggregate remains in %q", text)
	}
	return stripQualifiers(out), nil
}

// stripQualifiers drops "table." prefixes from column references (the
// spreadsheet has a single base).
func stripQualifiers(e expr.Expr) expr.Expr {
	clone, err := expr.Parse(e.SQL())
	if err != nil {
		return e
	}
	expr.Walk(clone, func(n expr.Expr) {
		if c, ok := n.(*expr.ColumnRef); ok {
			c.Name = bareName(c.Name)
		}
	})
	return clone
}

func bareName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func indexOfFold(xs []string, s string) int {
	for i, x := range xs {
		if strings.EqualFold(x, s) {
			return i
		}
	}
	return -1
}

func isAggCol(aggCols map[string]string, col string) bool {
	for _, c := range aggCols {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// Collapse reads the evaluated spreadsheet back in SQL's one-row-per-group
// form: the program's output columns, one row per finest group (or per
// tuple for ungrouped queries).
func (p *Program) Collapse() (*relation.Relation, error) {
	res, err := p.Sheet.Evaluate()
	if err != nil {
		return nil, err
	}
	proj, err := res.Table.Project(p.OutputCols)
	if err != nil {
		return nil, err
	}
	if len(p.GroupCols) == 0 && !p.hasAggregates() {
		return proj, nil
	}
	// One row per finest group: the group tree gives the boundaries.
	out := relation.New(proj.Name, proj.Schema)
	var walk func(g *core.Group)
	walk = func(g *core.Group) {
		if len(g.Children) == 0 {
			if g.Rows() > 0 {
				out.Rows = append(out.Rows, proj.Rows[g.Start].Clone())
			}
			return
		}
		for _, c := range g.Children {
			walk(c)
		}
	}
	walk(res.Root)
	return out, nil
}

func (p *Program) hasAggregates() bool {
	for _, c := range p.Sheet.ComputedColumns() {
		if c.Kind == core.KindAggregate {
			return true
		}
	}
	return false
}
