package uistudy

import (
	"testing"

	"sheetmusiq/internal/tpch"
)

func runDefault(t *testing.T) *Study {
	t.Helper()
	st, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunShape(t *testing.T) {
	st := runDefault(t)
	if len(st.Panel) != 10 {
		t.Fatalf("subjects = %d", len(st.Panel))
	}
	if len(st.Tasks) != 10 {
		t.Fatalf("task summaries = %d", len(st.Tasks))
	}
	if len(st.Trials) != 10*10*2 {
		t.Fatalf("trials = %d, want 200", len(st.Trials))
	}
	for _, tr := range st.Trials {
		if tr.Seconds <= 0 || tr.Seconds > Timeout {
			t.Fatalf("trial time %v out of (0, 900]", tr.Seconds)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := runDefault(t)
	b := runDefault(t)
	for i := range a.Trials {
		x, y := a.Trials[i], b.Trials[i]
		if x.Seconds != y.Seconds || x.Correct != y.Correct ||
			x.SyntaxErrors != y.SyntaxErrors || len(x.Errors) != len(y.Errors) {
			t.Fatalf("trial %d differs across identical runs", i)
		}
	}
}

func TestCounterbalancing(t *testing.T) {
	// "each package was used first half the time".
	st := runDefault(t)
	firstSM := 0
	for _, tr := range st.Trials {
		if tr.UsedFirst && tr.Iface == SheetMusiq {
			firstSM++
		}
	}
	if firstSM != 50 {
		t.Fatalf("SheetMusiq used first %d/100 times, want 50", firstSM)
	}
}

// TestFig3Shape: SheetMusiq is faster on average, and on most individual
// tasks, matching Fig. 3's shape.
func TestFig3Shape(t *testing.T) {
	st := runDefault(t)
	faster := 0
	var sumSM, sumNav float64
	for _, ts := range st.Tasks {
		if ts.MeanSheet < ts.MeanNav {
			faster++
		}
		sumSM += ts.MeanSheet
		sumNav += ts.MeanNav
	}
	if faster < 7 {
		t.Errorf("SheetMusiq faster on only %d/10 tasks", faster)
	}
	if sumSM >= sumNav {
		t.Errorf("total mean time SM %.0f ≥ Navicat %.0f", sumSM, sumNav)
	}
	// The paper reports significance (p < 0.002) on 7 of 10 queries and
	// comparable times on the simple ones; require the same broad shape.
	significant := 0
	for _, ts := range st.Tasks {
		if ts.MannWhitneyP < 0.002 {
			significant++
		}
	}
	if significant < 5 {
		t.Errorf("only %d/10 tasks significant at p<0.002", significant)
	}
	if significant == 10 {
		t.Log("all tasks significant; paper had three comparable ones")
	}
}

// TestFig4Shape: SheetMusiq's per-task standard deviation is smaller on
// most queries ("the standard deviation for SheetMusiq is much smaller on
// most queries").
func TestFig4Shape(t *testing.T) {
	st := runDefault(t)
	tighter := 0
	for _, ts := range st.Tasks {
		if ts.StdSheet < ts.StdNav {
			tighter++
		}
	}
	if tighter < 7 {
		t.Errorf("SheetMusiq tighter on only %d/10 tasks", tighter)
	}
}

// TestFig5Shape: correctness totals around 95 vs 81 of 100, Fisher
// significant (paper: p < 0.004).
func TestFig5Shape(t *testing.T) {
	st := runDefault(t)
	if st.TotalSM <= st.TotalNav {
		t.Fatalf("correct totals SM %d ≤ Nav %d", st.TotalSM, st.TotalNav)
	}
	if st.TotalSM < 88 || st.TotalSM > 100 {
		t.Errorf("SheetMusiq correct = %d/100, paper reports 95", st.TotalSM)
	}
	if st.TotalNav < 65 || st.TotalNav > 92 {
		t.Errorf("Navicat correct = %d/100, paper reports 81", st.TotalNav)
	}
	if st.FisherP >= 0.05 {
		t.Errorf("Fisher p = %v, paper reports < 0.004", st.FisherP)
	}
}

// TestTableVIShape: all subjects prefer SheetMusiq and find the concepts
// easier; most prefer progressive refinement (paper: 10/0, 10/0, 8/2,
// 10/0).
func TestTableVIShape(t *testing.T) {
	st := runDefault(t)
	if st.Survey.PreferSheetMusiq[0] != 10 {
		t.Errorf("prefer = %v, want 10/0", st.Survey.PreferSheetMusiq)
	}
	if st.Survey.SeeingDataHelps[0] != 10 {
		t.Errorf("seeing data = %v, want 10/0", st.Survey.SeeingDataHelps)
	}
	if st.Survey.ConceptsEasier[0] < 9 {
		t.Errorf("concepts easier = %v, want ~10/0", st.Survey.ConceptsEasier)
	}
	yes := st.Survey.ProgressiveRefinement[0]
	if yes < 6 || yes > 10 {
		t.Errorf("progressive refinement yes = %d, paper reports 8", yes)
	}
	if yes+st.Survey.ProgressiveRefinement[1] != 10 {
		t.Error("survey counts must total the panel")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Subjects: 0, Tasks: tpch.Tasks()}); err == nil {
		t.Error("zero subjects must error")
	}
	if _, err := Run(Config{Subjects: 3}); err == nil {
		t.Error("no tasks must error")
	}
}

func TestSeedChangesOutcomes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Trials {
		if a.Trials[i].Seconds != b.Trials[i].Seconds {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trials")
	}
}

func TestEstimatesReflectInterfaceAnalysis(t *testing.T) {
	// For every task with grouping or aggregation, the Navicat plan must
	// cost more than the SheetMusiq plan for an average subject.
	for _, task := range tpch.Tasks() {
		sm := estimateSheetMusiq(task)
		nav := estimateNavicat(task)
		tot := func(e estimate) float64 {
			s := 0.0
			for _, a := range e.actions {
				s += a.motor + a.typing + a.mental + e.verification
			}
			return s
		}
		hasHard := false
		for _, stp := range task.Steps {
			if stp.Kind == tpch.StepGroup || stp.Kind == tpch.StepAggregate {
				hasHard = true
			}
		}
		if hasHard && tot(nav) <= tot(sm) {
			t.Errorf("task %d: Navicat plan (%.1fs) should cost more than SheetMusiq (%.1fs)",
				task.ID, tot(nav), tot(sm))
		}
	}
}

func TestPredShape(t *testing.T) {
	agg := map[string]bool{"sum_value": true}
	sh := shapeOf("a = 1 AND b BETWEEN 2 AND 3 OR c IN ('x','y')", nil)
	if sh.atoms < 3 || sh.connectives != 2 {
		t.Errorf("shape = %+v", sh)
	}
	sh = shapeOf("sum_value > 50000", agg)
	if !sh.overAgg {
		t.Error("HAVING-style predicate not recognised")
	}
	sh = shapeOf("((broken", nil)
	if sh.atoms != 1 {
		t.Error("unparseable predicate should fall back to one atom")
	}
}

// TestSweepRobustness: the paper's conclusions are not a lucky seed — they
// hold across many simulated panels.
func TestSweepRobustness(t *testing.T) {
	res, err := Sweep(30, 5000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.SheetMusiqFasterOverall != res.Runs {
		t.Errorf("SheetMusiq faster overall in only %d/%d runs", res.SheetMusiqFasterOverall, res.Runs)
	}
	if res.FisherSignificant < res.Runs*8/10 {
		t.Errorf("Fisher significance in only %d/%d runs", res.FisherSignificant, res.Runs)
	}
	if res.MajoritySignificantSpeed < res.Runs*9/10 {
		t.Errorf("speed significance majority in only %d/%d runs", res.MajoritySignificantSpeed, res.Runs)
	}
	if res.MeanCorrectSM <= res.MeanCorrectNav {
		t.Errorf("mean correctness inverted: %.1f vs %.1f", res.MeanCorrectSM, res.MeanCorrectNav)
	}
	if res.String() == "" {
		t.Error("empty sweep rendering")
	}
}

// TestConceptBreakdownShape quantifies Sec. VII-A4: the builder's errors
// concentrate in grouping, aggregation and group qualification, and only
// the builder produces syntax errors.
func TestConceptBreakdownShape(t *testing.T) {
	st := runDefault(t)
	bd := st.ConceptBreakdown()
	for _, c := range []Concept{ConceptGrouping, ConceptAggregation} {
		counts := bd[c]
		if counts[1] <= counts[0] {
			t.Errorf("%v errors: SheetMusiq %d vs Navicat %d — builder should dominate", c, counts[0], counts[1])
		}
	}
	// The HAVING sample is tiny (two tasks); assert dominance over the
	// combined SQL-typed concepts instead of per concept.
	var smHard, navHard int
	for _, c := range []Concept{ConceptGrouping, ConceptAggregation, ConceptGroupQualification, ConceptFormula} {
		smHard += bd[c][0]
		navHard += bd[c][1]
	}
	if navHard <= smHard {
		t.Errorf("hard-concept errors: SheetMusiq %d vs Navicat %d", smHard, navHard)
	}
	sm, nav := st.SyntaxErrorTotals()
	if sm != 0 {
		t.Errorf("SheetMusiq syntax errors = %d, want 0 (paper: users never stuck on syntax)", sm)
	}
	if nav == 0 {
		t.Error("Navicat should produce syntax errors")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(0, 1, 10); err == nil {
		t.Error("zero runs must error")
	}
}
