package uistudy

import (
	"fmt"
	"math"
	"math/rand"

	"sheetmusiq/internal/stats"
	"sheetmusiq/internal/tpch"
)

// Config parameterises one simulated study run.
type Config struct {
	Subjects int
	Seed     int64
	Tasks    []tpch.Task
}

// DefaultConfig mirrors the paper: ten subjects, the ten TPC-H tasks.
func DefaultConfig() Config {
	return Config{Subjects: 10, Seed: 20090329, Tasks: tpch.Tasks()}
}

// Trial is one subject × task × interface measurement.
type Trial struct {
	Subject   int
	Task      int
	Iface     Interface
	Seconds   float64
	Correct   bool
	UsedFirst bool // whether this interface came first for this pair
	// Errors counts conceptual mistakes during the trial (noticed and
	// unnoticed), per concept — the raw material of the paper's
	// Sec. VII-A4 analysis.
	Errors map[Concept]int
	// SyntaxErrors counts SQL syntax stumbles (Navicat only by
	// construction: "users never stuck on syntactical errors in
	// SheetMusiq").
	SyntaxErrors int
}

// TaskSummary aggregates one task across subjects, per interface.
type TaskSummary struct {
	TaskID     int
	Name       string
	MeanSheet  float64
	MeanNav    float64
	StdSheet   float64
	StdNav     float64
	CorrectSM  int
	CorrectNav int
	// MannWhitneyP is the two-sided p-value comparing the time samples.
	MannWhitneyP float64
}

// TableVI holds the subjective questionnaire counts (yes, no) per question.
type TableVI struct {
	PreferSheetMusiq      [2]int // prefer SheetMusiq vs Navicat
	SeeingDataHelps       [2]int
	ProgressiveRefinement [2]int
	ConceptsEasier        [2]int
}

// Study is a complete simulated run.
type Study struct {
	Panel    []Subject
	Trials   []Trial
	Tasks    []TaskSummary
	TotalSM  int // total correct with SheetMusiq (of Subjects×Tasks)
	TotalNav int
	FisherP  float64
	Survey   TableVI
}

// Run simulates the full study: every subject completes every task with
// both interfaces, with the first-used tool alternating per task (the
// paper's counterbalancing: "each package was used first half the time").
func Run(cfg Config) (*Study, error) {
	if cfg.Subjects <= 0 {
		return nil, fmt.Errorf("uistudy: need at least one subject")
	}
	if len(cfg.Tasks) == 0 {
		return nil, fmt.Errorf("uistudy: need at least one task")
	}
	panel := NewPanel(cfg.Subjects, cfg.Seed)
	study := &Study{Panel: panel}

	// Pre-compute the per-interface action plans once per task.
	planSM := make([]estimate, len(cfg.Tasks))
	planNav := make([]estimate, len(cfg.Tasks))
	for i, task := range cfg.Tasks {
		planSM[i] = estimateSheetMusiq(task)
		planNav[i] = estimateNavicat(task)
	}

	for si, subj := range panel {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+si)))
		for ti := range cfg.Tasks {
			smFirst := (si+ti)%2 == 0
			order := []Interface{SheetMusiq, Navicat}
			if !smFirst {
				order = []Interface{Navicat, SheetMusiq}
			}
			for pos, iface := range order {
				plan := planSM[ti]
				if iface == Navicat {
					plan = planNav[ti]
				}
				out := simulateTrial(rng, subj, iface, plan, ti, pos == 0)
				study.Trials = append(study.Trials, Trial{
					Subject: subj.ID, Task: ti + 1, Iface: iface,
					Seconds: out.seconds, Correct: out.correct, UsedFirst: pos == 0,
					Errors: out.errors, SyntaxErrors: out.syntaxErrors,
				})
			}
		}
	}
	if err := study.aggregate(cfg); err != nil {
		return nil, err
	}
	study.survey(cfg)
	return study, nil
}

// trialOutcome carries one simulated trial's measurements.
type trialOutcome struct {
	seconds      float64
	correct      bool
	errors       map[Concept]int
	syntaxErrors int
}

// simulateTrial plays one subject through one task in one interface.
func simulateTrial(rng *rand.Rand, subj Subject, iface Interface, plan estimate, taskIdx int, first bool) trialOutcome {
	// Initial comprehension of where to start in this tool.
	secs := 12 * subj.Deliberation
	// Learning curve: the paper observed subjects picked up SheetMusiq much
	// faster (Sec. VII-A4); the builder's unfamiliarity decays slower.
	familiar := 1.0
	switch iface {
	case SheetMusiq:
		familiar = 1 + 0.25*math.Exp(-float64(taskIdx)/2)
	case Navicat:
		familiar = 1 + 0.60*math.Exp(-float64(taskIdx)/3)
	}
	if first {
		familiar *= 1.05 // small first-tool warm-up penalty
	}
	correct := true
	errors := map[Concept]int{}
	syntaxErrors := 0
	for _, a := range plan.actions {
		actionTime := a.motor*subj.Motor + a.typing*subj.Typing + a.mental*subj.Deliberation
		actionTime += plan.verification * subj.Deliberation
		actionTime *= familiar
		secs += actionTime

		// Conceptual error loop.
		pErr, pUnnoticed := conceptErrorRate(iface, a.concept)
		p := clamp(pErr*a.difficulty*subj.ErrorProne, 0, 0.9)
		for attempt := 0; attempt < 4; attempt++ {
			if rng.Float64() >= p {
				break // no (further) error
			}
			errors[a.concept]++
			if rng.Float64() < pUnnoticed {
				// The mistake slips through: wrong final answer, no time.
				correct = false
				break
			}
			// Noticed: diagnose and redo the action.
			secs += 2*opM*subj.Deliberation + actionTime*(0.6+0.6*rng.Float64())
			p /= 2
			if attempt == 3 {
				correct = false
			}
		}

		// Syntax errors only exist where raw SQL is typed: "users never
		// stuck on syntactical errors in SheetMusiq, which often happen in
		// Navicat".
		if iface == Navicat && a.typing > 0 {
			pSyn := clamp(a.typing/opK/120*0.35*subj.ErrorProne, 0, 0.8)
			for attempt := 0; attempt < 4 && rng.Float64() < pSyn; attempt++ {
				syntaxErrors++
				secs += (8 + 18*rng.Float64()) * subj.Deliberation
				pSyn /= 2
			}
		}
	}
	// Final answer check and cleanup.
	secs += 6 * subj.Deliberation
	// Trial-to-trial human variability (distractions, re-reading the task);
	// the run-and-inspect workflow of the builder varies more.
	noise := 0.18
	if iface == Navicat {
		noise = 0.32
	}
	secs *= math.Exp(rng.NormFloat64() * noise)
	if secs >= Timeout {
		// "the task was considered finished with wrong results, and the
		// time was counted as 900 seconds".
		return trialOutcome{seconds: Timeout, correct: false, errors: errors, syntaxErrors: syntaxErrors}
	}
	return trialOutcome{seconds: secs, correct: correct, errors: errors, syntaxErrors: syntaxErrors}
}

func (st *Study) aggregate(cfg Config) error {
	for ti, task := range cfg.Tasks {
		var sm, nav []float64
		summary := TaskSummary{TaskID: ti + 1, Name: task.Name}
		for _, tr := range st.Trials {
			if tr.Task != ti+1 {
				continue
			}
			if tr.Iface == SheetMusiq {
				sm = append(sm, tr.Seconds)
				if tr.Correct {
					summary.CorrectSM++
				}
			} else {
				nav = append(nav, tr.Seconds)
				if tr.Correct {
					summary.CorrectNav++
				}
			}
		}
		summary.MeanSheet = stats.Mean(sm)
		summary.MeanNav = stats.Mean(nav)
		summary.StdSheet = stats.StdDev(sm)
		summary.StdNav = stats.StdDev(nav)
		mw, err := stats.MannWhitney(sm, nav)
		if err != nil {
			return err
		}
		summary.MannWhitneyP = mw.P
		st.TotalSM += summary.CorrectSM
		st.TotalNav += summary.CorrectNav
		st.Tasks = append(st.Tasks, summary)
	}
	n := cfg.Subjects * len(cfg.Tasks)
	p, err := stats.FisherExact(st.TotalSM, n-st.TotalSM, st.TotalNav, n-st.TotalNav)
	if err != nil {
		return err
	}
	st.FisherP = p
	return nil
}

// ConceptBreakdown aggregates error counts per concept and interface
// across all trials — the quantified form of the paper's Sec. VII-A4
// analysis ("selection based on aggregation", "grouping is much easier in
// SheetMusiq", "group-qualification").
func (st *Study) ConceptBreakdown() map[Concept][2]int {
	out := map[Concept][2]int{}
	for _, tr := range st.Trials {
		for c, n := range tr.Errors {
			cur := out[c]
			if tr.Iface == SheetMusiq {
				cur[0] += n
			} else {
				cur[1] += n
			}
			out[c] = cur
		}
	}
	return out
}

// SyntaxErrorTotals returns total syntax stumbles per interface
// (SheetMusiq, Navicat).
func (st *Study) SyntaxErrorTotals() (sm, nav int) {
	for _, tr := range st.Trials {
		if tr.Iface == SheetMusiq {
			sm += tr.SyntaxErrors
		} else {
			nav += tr.SyntaxErrors
		}
	}
	return sm, nav
}

// survey derives Table VI from each subject's measured outcomes: subjects
// prefer the tool that was faster and less error-prone for them, everyone
// who watched results update values seeing the data, and the progressive-
// refinement question follows the subject's specification-style trait.
func (st *Study) survey(cfg Config) {
	for _, subj := range st.Panel {
		var smTime, navTime float64
		var smWrong, navWrong int
		for _, tr := range st.Trials {
			if tr.Subject != subj.ID {
				continue
			}
			if tr.Iface == SheetMusiq {
				smTime += tr.Seconds
				if !tr.Correct {
					smWrong++
				}
			} else {
				navTime += tr.Seconds
				if !tr.Correct {
					navWrong++
				}
			}
		}
		if smTime < navTime || smWrong < navWrong {
			st.Survey.PreferSheetMusiq[0]++
		} else {
			st.Survey.PreferSheetMusiq[1]++
		}
		// The spreadsheet's defining property: results visible throughout.
		st.Survey.SeeingDataHelps[0]++
		if subj.PrefersOneShot {
			st.Survey.ProgressiveRefinement[1]++
		} else {
			st.Survey.ProgressiveRefinement[0]++
		}
		if navWrong >= smWrong {
			st.Survey.ConceptsEasier[0]++
		} else {
			st.Survey.ConceptsEasier[1]++
		}
	}
}
