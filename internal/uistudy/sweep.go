package uistudy

import (
	"fmt"

	"sheetmusiq/internal/tpch"
)

// SweepResult summarises how often the paper's published conclusions hold
// across repeated simulated studies with different random panels — the
// robustness check a single 10-subject sample cannot give.
type SweepResult struct {
	Runs int
	// SheetMusiqFasterOverall counts runs whose summed mean time favours
	// SheetMusiq.
	SheetMusiqFasterOverall int
	// FisherSignificant counts runs with correctness Fisher p < 0.004 (the
	// paper's reported bound).
	FisherSignificant int
	// MajoritySignificantSpeed counts runs where ≥ half the tasks are
	// Mann-Whitney significant at p < 0.002.
	MajoritySignificantSpeed int
	// SomeComparableTask counts runs with at least one task NOT significant
	// at p < 0.002 (the paper found three such queries).
	SomeComparableTask int
	// UnanimousPreference counts runs where every subject prefers
	// SheetMusiq (Table VI question 1).
	UnanimousPreference int
	// MeanCorrectSM/Nav average the correctness totals.
	MeanCorrectSM  float64
	MeanCorrectNav float64
}

// Sweep runs the study `runs` times with seeds seed0, seed0+1, … and
// tallies how often each published conclusion reproduces.
func Sweep(runs int, seed0 int64, subjects int) (*SweepResult, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("uistudy: sweep needs at least one run")
	}
	tasks := tpch.Tasks()
	out := &SweepResult{Runs: runs}
	for r := 0; r < runs; r++ {
		st, err := Run(Config{Subjects: subjects, Seed: seed0 + int64(r), Tasks: tasks})
		if err != nil {
			return nil, err
		}
		var sumSM, sumNav float64
		significant, comparable := 0, 0
		for _, ts := range st.Tasks {
			sumSM += ts.MeanSheet
			sumNav += ts.MeanNav
			if ts.MannWhitneyP < 0.002 {
				significant++
			} else {
				comparable++
			}
		}
		if sumSM < sumNav {
			out.SheetMusiqFasterOverall++
		}
		if st.FisherP < 0.004 {
			out.FisherSignificant++
		}
		if significant*2 >= len(st.Tasks) {
			out.MajoritySignificantSpeed++
		}
		if comparable > 0 {
			out.SomeComparableTask++
		}
		if st.Survey.PreferSheetMusiq[1] == 0 {
			out.UnanimousPreference++
		}
		out.MeanCorrectSM += float64(st.TotalSM)
		out.MeanCorrectNav += float64(st.TotalNav)
	}
	out.MeanCorrectSM /= float64(runs)
	out.MeanCorrectNav /= float64(runs)
	return out, nil
}

// String renders the sweep as the experiments command prints it.
func (r *SweepResult) String() string {
	pct := func(n int) string {
		return fmt.Sprintf("%d/%d (%.0f%%)", n, r.Runs, 100*float64(n)/float64(r.Runs))
	}
	return fmt.Sprintf(
		"robustness over %d simulated panels:\n"+
			"  SheetMusiq faster overall:        %s\n"+
			"  correctness Fisher p < 0.004:     %s\n"+
			"  ≥half tasks speed-significant:    %s\n"+
			"  ≥one comparable task (paper: 3):  %s\n"+
			"  unanimous preference:             %s\n"+
			"  mean correct: SheetMusiq %.1f/100, Navicat %.1f/100\n",
		r.Runs, pct(r.SheetMusiqFasterOverall), pct(r.FisherSignificant),
		pct(r.MajoritySignificantSpeed), pct(r.SomeComparableTask),
		pct(r.UnanimousPreference), r.MeanCorrectSM, r.MeanCorrectNav)
}
