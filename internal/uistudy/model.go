// Package uistudy simulates the paper's user study (Sec. VII): ten
// subjects without database-query-language background complete the ten
// TPC-H-derived tasks in two interfaces — SheetMusiq, the direct
// manipulation spreadsheet, and a Navicat-style visual query builder — and
// we measure per-task completion time (Fig. 3), its standard deviation
// (Fig. 4), correctness (Fig. 5), and the subjective questionnaire
// (Table VI).
//
// Human subjects are simulated with a keystroke-level model (KLM): every
// interface action decomposes into the standard operators K (keystroke),
// P (point), B (press/release), H (hand homing) and M (mental
// preparation), scaled by per-subject skill factors, plus an error model
// that encodes the paper's qualitative analysis (Sec. VII-A4): the builder
// requires raw SQL for grouping, aggregation and group qualification,
// where non-technical users make — and often fail to notice — conceptual
// and syntactic mistakes, while the spreadsheet's immediate visual
// feedback catches most mistakes on the spot. DESIGN.md §2 documents this
// substitution for the original human panel.
package uistudy

import (
	"math/rand"
)

// Standard KLM operator durations in seconds (Card, Moran & Newell).
const (
	opK = 0.28 // keystroke (average typist)
	opP = 1.10 // point with mouse
	opB = 0.20 // mouse button press and release
	opH = 0.40 // home hands between keyboard and mouse
	opM = 1.35 // mental preparation
)

// Timeout is the study's cap: "if a user did not finish the query in 900
// seconds, the task was considered finished with wrong results".
const Timeout = 900.0

// Interface identifies which tool a trial uses.
type Interface uint8

// The two compared interfaces.
const (
	SheetMusiq Interface = iota
	Navicat
)

// String names the interface as in the paper.
func (i Interface) String() string {
	if i == Navicat {
		return "Navicat"
	}
	return "SheetMusiq"
}

// Concept classifies the database concept an interface action exercises;
// error rates attach to concepts per interface.
type Concept uint8

// Concepts, ordered roughly by the difficulty the paper reports.
const (
	ConceptSelection Concept = iota
	ConceptOrdering
	ConceptProjection
	ConceptFormula
	ConceptGrouping
	ConceptAggregation
	ConceptGroupQualification // the HAVING clause
)

// String names the concept.
func (c Concept) String() string {
	switch c {
	case ConceptSelection:
		return "selection"
	case ConceptOrdering:
		return "ordering"
	case ConceptProjection:
		return "projection"
	case ConceptFormula:
		return "formula"
	case ConceptGrouping:
		return "grouping"
	case ConceptAggregation:
		return "aggregation"
	default:
		return "group-qualification"
	}
}

// Subject is one simulated participant ("ten volunteers with no background
// in database query languages", ages 24–30, at least a bachelor's degree).
type Subject struct {
	ID int
	// Motor scales pointing/clicking time; Typing scales keystrokes;
	// Deliberation scales thinking pauses. All centred on 1.
	Motor        float64
	Typing       float64
	Deliberation float64
	// ErrorProne scales every error probability.
	ErrorProne float64
	// PrefersOneShot marks the minority who would rather specify a query
	// all at once than refine progressively (Table VI, question 3: 8 of 10
	// preferred progressive refinement).
	PrefersOneShot bool
}

// NewPanel creates n subjects with deterministically seeded trait spreads.
func NewPanel(n int, seed int64) []Subject {
	rng := rand.New(rand.NewSource(seed))
	panel := make([]Subject, n)
	for i := range panel {
		panel[i] = Subject{
			ID:           i + 1,
			Motor:        clamp(1+rng.NormFloat64()*0.18, 0.7, 1.5),
			Typing:       clamp(1+rng.NormFloat64()*0.25, 0.6, 1.8),
			Deliberation: clamp(1+rng.NormFloat64()*0.30, 0.55, 1.9),
			ErrorProne:   clamp(1+rng.NormFloat64()*0.35, 0.5, 2.2),
			// Roughly one in five favours one-shot specification.
			PrefersOneShot: rng.Float64() < 0.2,
		}
	}
	return panel
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// actionCost is the deterministic KLM decomposition of one interface
// action, before subject scaling.
type actionCost struct {
	motor      float64 // P/B/H time
	typing     float64 // K time
	mental     float64 // M time
	concept    Concept
	difficulty float64 // scales the concept's base error probability
}

// estimate is the full action plan for one task in one interface.
type estimate struct {
	actions []actionCost
	// verification is the per-action result-reading pause; the spreadsheet
	// shows the data continuously ("immediate and intuitive result
	// presentation"), the builder requires running the query to see
	// anything.
	verification float64
}

// conceptErrorRate returns the base probability that one action exercising
// the concept goes wrong in the given interface. The asymmetry encodes
// Sec. VII-A4: grouping, aggregation and group qualification require raw
// SQL in the builder.
func conceptErrorRate(iface Interface, c Concept) (pErr, pUnnoticed float64) {
	if iface == SheetMusiq {
		switch c {
		case ConceptSelection, ConceptOrdering, ConceptProjection:
			return 0.02, 0.10
		case ConceptFormula:
			return 0.05, 0.12
		case ConceptGrouping, ConceptAggregation:
			return 0.04, 0.10
		default: // group qualification is "filter the groups with a click"
			return 0.05, 0.12
		}
	}
	switch c {
	case ConceptSelection, ConceptOrdering, ConceptProjection:
		return 0.04, 0.18
	case ConceptFormula:
		return 0.12, 0.30
	case ConceptGrouping:
		return 0.15, 0.30
	case ConceptAggregation:
		return 0.13, 0.30
	default: // HAVING: "users struggled with the having clause"
		return 0.22, 0.35
	}
}
