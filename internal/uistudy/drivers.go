package uistudy

import (
	"sheetmusiq/internal/core"
	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/tpch"
)

// predShape summarises a predicate for costing: how many atomic
// comparisons it contains, how many connectives join them, and how many
// constant characters must be typed.
type predShape struct {
	atoms       int
	connectives int
	constChars  int
	overAgg     bool // references an aggregate result column (HAVING style)
}

func shapeOf(predicate string, aggCols map[string]bool) predShape {
	sh := predShape{}
	e, err := expr.Parse(predicate)
	if err != nil {
		// Unparseable predicates cannot occur for valid tasks; cost it as
		// one atom so the estimator stays total.
		return predShape{atoms: 1}
	}
	expr.Walk(e, func(n expr.Expr) {
		switch t := n.(type) {
		case *expr.Binary:
			switch t.Op {
			case expr.OpAnd, expr.OpOr:
				sh.connectives++
			case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpLike:
				sh.atoms++
			}
		case *expr.Between:
			sh.atoms++
		case *expr.InList:
			sh.atoms++
			// Each list member is picked or typed.
			sh.atoms += len(t.Items) / 2
		case *expr.IsNull:
			sh.atoms++
		case *expr.Literal:
			sh.constChars += len(t.Val.String())
		case *expr.ColumnRef:
			if aggCols[lower(t.Name)] {
				sh.overAgg = true
			}
		}
	})
	if sh.atoms == 0 {
		sh.atoms = 1
	}
	return sh
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// formulaShape counts the picks and typing a formula dialog needs.
func formulaShape(formula string) (picks int, chars int) {
	e, err := expr.Parse(formula)
	if err != nil {
		return 2, len(formula)
	}
	expr.Walk(e, func(n expr.Expr) {
		switch t := n.(type) {
		case *expr.ColumnRef:
			picks++
		case *expr.Binary:
			picks++
		case *expr.FuncCall:
			picks++
		case *expr.Literal:
			chars += len(t.Val.String())
		}
	})
	if picks == 0 {
		picks = 1
	}
	return picks, chars
}

// aggColumnsOf collects the aggregate result columns a task's program
// creates, to recognise HAVING-style selections.
func aggColumnsOf(task tpch.Task) map[string]bool {
	out := map[string]bool{}
	for _, st := range task.Steps {
		if st.Kind == tpch.StepAggregate {
			out[lower(st.As)] = true
		}
	}
	return out
}

// estimateSheetMusiq prices the task's algebra program under the Sec. VI
// interface design: every operator is a context-menu interaction with the
// result visible immediately after each step.
func estimateSheetMusiq(task tpch.Task) estimate {
	aggCols := aggColumnsOf(task)
	est := estimate{verification: 1.6}
	add := func(a actionCost) { est.actions = append(est.actions, a) }
	for _, st := range task.Steps {
		switch st.Kind {
		case tpch.StepSelect:
			sh := shapeOf(st.Predicate, aggCols)
			concept := ConceptSelection
			if sh.overAgg {
				concept = ConceptGroupQualification
			}
			add(actionCost{
				// Right-click the column, pick "filter", then per atom pick
				// column+operator and type the constant.
				motor:      (opP + opB) + float64(sh.atoms)*2*(opP+opB) + float64(sh.connectives)*(opP+opB) + 2*opH,
				typing:     float64(sh.constChars) * opK,
				mental:     opM * float64(1+sh.connectives),
				concept:    concept,
				difficulty: 1 + 0.3*float64(sh.connectives),
			})
		case tpch.StepGroup:
			add(actionCost{
				motor:      (opP + opB) + (opP + opB) + float64(len(st.Columns))*(opP+opB),
				mental:     opM,
				concept:    ConceptGrouping,
				difficulty: 1,
			})
		case tpch.StepSort:
			clicks := 1.0
			if st.Dir == core.Desc {
				clicks = 2
			}
			add(actionCost{
				motor:      opP + clicks*opB,
				mental:     opM * 0.5,
				concept:    ConceptOrdering,
				difficulty: 0.7,
			})
		case tpch.StepAggregate:
			add(actionCost{
				// Right-click cell, choose "aggregation", pick function,
				// pick grouping level (Fig. 1's dialog).
				motor:      4 * (opP + opB),
				mental:     opM,
				concept:    ConceptAggregation,
				difficulty: 1,
			})
		case tpch.StepFormula:
			picks, chars := formulaShape(st.Formula)
			add(actionCost{
				motor:      (opP + opB) + float64(picks)*(opP+opB) + (opP + opB) + 2*opH,
				typing:     float64(chars) * opK,
				mental:     opM * 1.5,
				concept:    ConceptFormula,
				difficulty: 1 + 0.1*float64(picks),
			})
		case tpch.StepHide:
			add(actionCost{
				motor:      float64(len(st.Columns)) * (opP + opB),
				mental:     opM * 0.3,
				concept:    ConceptProjection,
				difficulty: 0.5,
			})
		}
	}
	return est
}

// estimateNavicat prices the same task in a Navicat-style builder: "only
// queries with simple selection, sorting, and joins can be built
// graphically, while the vast majority of the queries need to be completed
// by adding to the SQL query" (Sec. VII-A4). Grouping, aggregation,
// formulas and HAVING are therefore typed as SQL text, with the result
// visible only after explicitly running the query.
func estimateNavicat(task tpch.Task) estimate {
	aggCols := aggColumnsOf(task)
	// Builders force a run-and-inspect cycle to see any output.
	est := estimate{verification: 4.5}
	add := func(a actionCost) { est.actions = append(est.actions, a) }
	for _, st := range task.Steps {
		switch st.Kind {
		case tpch.StepSelect:
			sh := shapeOf(st.Predicate, aggCols)
			if sh.overAgg {
				// HAVING cannot be built graphically: type the clause.
				chars := len("HAVING ") + len(st.Predicate) + 8
				add(actionCost{
					motor:      2*opH + (opP + opB), // switch to the SQL pane
					typing:     float64(chars) * opK,
					mental:     opM * 3, // recall clause syntax and placement
					concept:    ConceptGroupQualification,
					difficulty: 1.3,
				})
				continue
			}
			add(actionCost{
				// The builder's criteria grid: pick column, operator, value
				// per atom, plus grid navigation overhead.
				motor:      float64(sh.atoms)*3*(opP+opB) + float64(sh.connectives)*2*(opP+opB) + 2*opH,
				typing:     float64(sh.constChars) * opK,
				mental:     opM * float64(1+sh.connectives),
				concept:    ConceptSelection,
				difficulty: 1 + 0.4*float64(sh.connectives),
			})
		case tpch.StepGroup:
			chars := len("GROUP BY ") + 12*len(st.Columns)
			add(actionCost{
				motor:      2*opH + (opP + opB),
				typing:     float64(chars) * opK,
				mental:     opM * 3, // "users have no choice but to understand the concept and syntax of grouping"
				concept:    ConceptGrouping,
				difficulty: 1.2,
			})
		case tpch.StepSort:
			add(actionCost{
				motor:      2 * (opP + opB),
				mental:     opM * 0.5,
				concept:    ConceptOrdering,
				difficulty: 0.7,
			})
		case tpch.StepAggregate:
			chars := len(string(st.Agg)) + len(st.Input) + len(st.As) + 8
			add(actionCost{
				motor:      2*opH + (opP + opB),
				typing:     float64(chars) * opK,
				mental:     opM * 2.5, // aggregate goes in the SELECT list with grouping constraints
				concept:    ConceptAggregation,
				difficulty: 1.2,
			})
		case tpch.StepFormula:
			chars := len(st.Formula) + len(st.As) + 6
			add(actionCost{
				motor:      2*opH + (opP + opB),
				typing:     float64(chars) * opK,
				mental:     opM * 2,
				concept:    ConceptFormula,
				difficulty: 1.1,
			})
		case tpch.StepHide:
			add(actionCost{
				motor:      float64(len(st.Columns)) * (opP + opB),
				mental:     opM * 0.3,
				concept:    ConceptProjection,
				difficulty: 0.5,
			})
		}
	}
	// Short typed queries are manageable even for novices; long ones
	// compound ("the vast majority of the queries need to be completed by
	// adding to the SQL query"). Scale the SQL-editing burden by how much
	// of the query must be hand-written.
	typed := 0
	for _, a := range est.actions {
		if a.typing > 0 {
			typed++
		}
	}
	scale := clamp(float64(typed)/4.5, 0.3, 1.6)
	for i := range est.actions {
		if est.actions[i].typing > 0 {
			est.actions[i].mental *= scale
			est.actions[i].typing *= scale
			est.actions[i].difficulty *= clamp(scale, 0.7, 1.3)
		}
	}
	return est
}
