// Package repl implements the interactive direct-manipulation session
// behind cmd/sheetmusiq. It is the textual equivalent of the paper's
// Sec. VI interface: every command is one spreadsheet-algebra operator, the
// resulting sheet is shown after each step, history is visible, and any
// stored operator can be modified in place (Sec. V).
package repl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/sqlgen"
	"sheetmusiq/internal/theorem1"
	"sheetmusiq/internal/tpch"
)

// Session is one interactive spreadsheet session.
type Session struct {
	out     io.Writer
	sheet   *core.Spreadsheet
	catalog *core.Catalog
	tables  *sql.DB // raw loaded/generated relations, openable as sheets
	rows    int     // display limit
	echo    bool    // show the sheet after every manipulation
}

// New creates a session writing to out.
func New(out io.Writer) *Session {
	return &Session{
		out:     out,
		catalog: core.NewCatalog(),
		tables:  sql.NewDB(),
		rows:    20,
		echo:    true,
	}
}

// Run reads commands until EOF or "quit".
func (s *Session) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(s.out, `SheetMusiq — a direct-manipulation query interface. Type "help".`)
	s.prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			s.prompt()
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.Exec(line); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
		s.prompt()
	}
	return sc.Err()
}

func (s *Session) prompt() {
	name := "(no sheet)"
	if s.sheet != nil {
		name = s.sheet.Name()
	}
	fmt.Fprintf(s.out, "%s> ", name)
}

// Exec runs a single command line.
func (s *Session) Exec(line string) error {
	cmd, rest := splitWord(line)
	switch strings.ToLower(cmd) {
	case "help":
		s.help()
		return nil
	case "demo":
		return s.demo(rest)
	case "load":
		return s.load(rest)
	case "tables":
		names := s.tables.Names()
		sort.Strings(names)
		fmt.Fprintln(s.out, strings.Join(names, " "))
		return nil
	case "use":
		return s.use(rest)
	case "show":
		return s.show(rest)
	case "tree":
		if s.sheet == nil {
			return fmt.Errorf("no current sheet")
		}
		res, err := s.sheet.Evaluate()
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, res.RenderTree())
		return nil
	case "select", "filter":
		return s.withSheet(func() error {
			_, err := s.sheet.Select(rest)
			return err
		})
	case "group":
		return s.group(rest)
	case "ungroup":
		return s.withSheet(func() error { return s.sheet.Ungroup() })
	case "sort":
		return s.sortCmd(rest)
	case "order":
		return s.orderCmd(rest)
	case "agg", "aggregate":
		return s.agg(rest)
	case "formula":
		return s.formula(rest)
	case "hide":
		return s.withSheet(func() error { return s.sheet.Hide(rest) })
	case "unhide", "reinstate":
		return s.withSheet(func() error { return s.sheet.Reinstate(rest) })
	case "distinct":
		return s.withSheet(func() error { return s.sheet.Distinct() })
	case "nodistinct":
		return s.withSheet(func() error { return s.sheet.RemoveDistinct() })
	case "rename":
		old, new := splitWord(rest)
		return s.withSheet(func() error { return s.sheet.Rename(old, strings.TrimSpace(new)) })
	case "drop":
		return s.drop(rest)
	case "filters", "selections":
		return s.filters(rest)
	case "modify":
		return s.modify(rest)
	case "history":
		return s.history()
	case "undo":
		return s.undoRedo(true)
	case "redo":
		return s.undoRedo(false)
	case "state":
		return s.state()
	case "columns":
		if s.sheet == nil {
			return fmt.Errorf("no current sheet")
		}
		fmt.Fprintln(s.out, s.sheet.VisibleSchema().String())
		return nil
	case "menu", "suggest":
		return s.menu(rest)
	case "savestate":
		return s.saveState(rest)
	case "export":
		return s.export(rest)
	case "loadstate":
		return s.loadState(rest)
	case "sql":
		return s.sql(false)
	case "explain":
		return s.sql(true)
	case "save":
		if s.sheet == nil {
			return fmt.Errorf("no current sheet")
		}
		if rest == "" {
			return fmt.Errorf("usage: save <name>")
		}
		return s.catalog.Save(rest, s.sheet)
	case "open":
		sheet, err := s.catalog.Open(rest)
		if err != nil {
			return err
		}
		s.sheet = sheet
		return s.maybeShow()
	case "close":
		return s.catalog.Close(rest)
	case "sheets":
		fmt.Fprintln(s.out, strings.Join(s.catalog.Names(), " "))
		return nil
	case "join":
		return s.binary(rest, "join")
	case "product":
		return s.binary(rest, "product")
	case "union":
		return s.binary(rest, "union")
	case "minus", "difference":
		return s.binary(rest, "minus")
	case "run":
		return s.runSQL(rest)
	case "compile":
		return s.compile(rest)
	case "rows":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n < 1 {
			return fmt.Errorf("usage: rows <n>")
		}
		s.rows = n
		return nil
	case "echo":
		switch strings.TrimSpace(rest) {
		case "on":
			s.echo = true
		case "off":
			s.echo = false
		default:
			return fmt.Errorf("usage: echo on|off")
		}
		return nil
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

func (s *Session) withSheet(fn func() error) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet; load or demo first")
	}
	if err := fn(); err != nil {
		return err
	}
	return s.maybeShow()
}

// maybeShow implements direct manipulation's continuous presentation: the
// sheet re-renders after every operator.
func (s *Session) maybeShow() error {
	if !s.echo || s.sheet == nil {
		return nil
	}
	return s.show("")
}

func (s *Session) demo(arg string) error {
	which, rest := splitWord(arg)
	switch which {
	case "", "cars":
		cars := dataset.UsedCars()
		s.tables.Register(cars)
		s.sheet = core.New(cars)
		return s.maybeShow()
	case "tpch":
		sf := 0.002
		if rest != "" {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("usage: demo tpch [scale-factor]")
			}
			sf = v
		}
		tb := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 1})
		for _, r := range tb.All() {
			s.tables.Register(r)
		}
		if err := registerViews(s.tables); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "generated tpch tables and study views; `tables` lists them, `use <table>` opens one")
		return nil
	}
	return fmt.Errorf("unknown demo %q (cars, tpch)", which)
}

func registerViews(db *sql.DB) error {
	return tpch.BuildViews(db)
}

func (s *Session) load(arg string) error {
	path, name := splitWord(arg)
	if path == "" {
		return fmt.Errorf("usage: load <file.csv> [name]")
	}
	if name == "" {
		name = strings.TrimSuffix(path, ".csv")
		if i := strings.LastIndexAny(name, "/\\"); i >= 0 {
			name = name[i+1:]
		}
	}
	rel, err := relation.LoadCSV(name, path, nil)
	if err != nil {
		return err
	}
	s.tables.Register(rel)
	s.sheet = core.New(rel)
	return s.maybeShow()
}

func (s *Session) use(name string) error {
	rel, ok := s.tables.Table(name)
	if !ok {
		return fmt.Errorf("no table %q (see tables)", name)
	}
	s.sheet = core.New(rel)
	return s.maybeShow()
}

func (s *Session) show(arg string) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	limit := s.rows
	if strings.TrimSpace(arg) != "" {
		n, err := strconv.Atoi(strings.TrimSpace(arg))
		if err != nil || n < 1 {
			return fmt.Errorf("usage: show [n]")
		}
		limit = n
	}
	res, err := s.sheet.Evaluate()
	if err != nil {
		return err
	}
	text := res.RenderGrouped()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	shown := lines
	if len(lines) > limit+1 {
		shown = lines[:limit+1]
	}
	fmt.Fprintln(s.out, strings.Join(shown, "\n"))
	if len(lines) > limit+1 {
		fmt.Fprintf(s.out, "... (%d rows total; `rows %d` to see more)\n", res.Table.Len(), res.Table.Len())
	}
	return nil
}

func (s *Session) group(rest string) error {
	dirWord, cols := splitWord(rest)
	dir, err := core.ParseDir(dirWord)
	if err != nil {
		return fmt.Errorf("usage: group asc|desc <col> [col...]")
	}
	fields := strings.Fields(cols)
	if len(fields) == 0 {
		return fmt.Errorf("usage: group asc|desc <col> [col...]")
	}
	return s.withSheet(func() error { return s.sheet.GroupBy(dir, fields...) })
}

func (s *Session) sortCmd(rest string) error {
	col, dirWord := splitWord(rest)
	if col == "" {
		return fmt.Errorf("usage: sort <col> [asc|desc]")
	}
	dir, err := core.ParseDir(dirWord)
	if err != nil {
		return err
	}
	return s.withSheet(func() error { return s.sheet.Sort(col, dir) })
}

func (s *Session) orderCmd(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 3 {
		return fmt.Errorf("usage: order <col> <asc|desc> <level>")
	}
	dir, err := core.ParseDir(fields[1])
	if err != nil {
		return err
	}
	level, err := strconv.Atoi(fields[2])
	if err != nil {
		return fmt.Errorf("bad level %q", fields[2])
	}
	return s.withSheet(func() error { return s.sheet.OrderBy(fields[0], dir, level) })
}

func (s *Session) agg(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 3 && !(len(fields) == 5 && strings.EqualFold(fields[3], "as")) {
		return fmt.Errorf("usage: agg <fn> <col> <level> [as <name>]")
	}
	fn, err := relation.ParseAggFunc(fields[0])
	if err != nil {
		return err
	}
	level, err := strconv.Atoi(fields[2])
	if err != nil {
		return fmt.Errorf("bad level %q", fields[2])
	}
	name := ""
	if len(fields) == 5 {
		name = fields[4]
	}
	return s.withSheet(func() error {
		got, err := s.sheet.AggregateAs(name, fn, fields[1], level)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "created column %s\n", got)
		return nil
	})
}

func (s *Session) formula(rest string) error {
	name, def, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("usage: formula <name> = <expression>")
	}
	return s.withSheet(func() error {
		got, err := s.sheet.Formula(strings.TrimSpace(name), strings.TrimSpace(def))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "created column %s\n", got)
		return nil
	})
}

func (s *Session) filters(col string) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	sels := s.sheet.Selections(strings.TrimSpace(col))
	if len(sels) == 0 {
		fmt.Fprintln(s.out, "(no selections)")
		return nil
	}
	for _, sel := range sels {
		fmt.Fprintf(s.out, "#%d  %s\n", sel.ID, sel.Pred.SQL())
	}
	return nil
}

func (s *Session) modify(rest string) error {
	idWord, pred := splitWord(rest)
	id, err := strconv.Atoi(strings.TrimPrefix(idWord, "#"))
	if err != nil || pred == "" {
		return fmt.Errorf("usage: modify <id> <new predicate>   (see filters)")
	}
	return s.withSheet(func() error { return s.sheet.ReplaceSelection(id, pred) })
}

func (s *Session) drop(rest string) error {
	idWord, _ := splitWord(rest)
	if id, err := strconv.Atoi(strings.TrimPrefix(idWord, "#")); err == nil {
		return s.withSheet(func() error { return s.sheet.RemoveSelection(id) })
	}
	// Otherwise treat as a computed column name.
	return s.withSheet(func() error { return s.sheet.RemoveComputed(idWord) })
}

func (s *Session) history() error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	hist := s.sheet.History()
	if len(hist) == 0 {
		fmt.Fprintln(s.out, "(empty history)")
		return nil
	}
	for i, h := range hist {
		fmt.Fprintf(s.out, "%2d. %s\n", i+1, h)
	}
	return nil
}

func (s *Session) undoRedo(undo bool) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	var entry string
	var err error
	if undo {
		entry, err = s.sheet.Undo()
	} else {
		entry, err = s.sheet.Redo()
	}
	if err != nil {
		return err
	}
	verb := "undid"
	if !undo {
		verb = "redid"
	}
	fmt.Fprintf(s.out, "%s: %s\n", verb, entry)
	return s.maybeShow()
}

func (s *Session) state() error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	fmt.Fprintf(s.out, "sheet %s (version %d)\n", s.sheet.Name(), s.sheet.Version())
	fmt.Fprintf(s.out, "visible: %s\n", strings.Join(s.sheet.VisibleSchema().Names(), ", "))
	if hidden := s.sheet.HiddenColumns(); len(hidden) > 0 {
		fmt.Fprintf(s.out, "hidden: %s\n", strings.Join(hidden, ", "))
	}
	for _, sel := range s.sheet.Selections("") {
		fmt.Fprintf(s.out, "selection #%d: %s\n", sel.ID, sel.Pred.SQL())
	}
	for _, c := range s.sheet.ComputedColumns() {
		if c.Kind == core.KindAggregate {
			fmt.Fprintf(s.out, "aggregate %s = %s(%s) at level %d\n", c.Name, c.Agg, c.Input, c.Level)
		} else {
			fmt.Fprintf(s.out, "formula %s = %s\n", c.Name, c.Formula.SQL())
		}
	}
	for i, g := range s.sheet.Grouping() {
		fmt.Fprintf(s.out, "grouping level %d: {%s} %s\n", i+2, strings.Join(g.Rel, ", "), g.Dir)
	}
	for _, k := range s.sheet.FinestOrder() {
		fmt.Fprintf(s.out, "order: %s %s\n", k.Column, k.Dir)
	}
	if d := s.sheet.DistinctColumns(); len(d) > 0 {
		fmt.Fprintf(s.out, "distinct on: %s\n", strings.Join(d, ", "))
	}
	return nil
}

func (s *Session) menu(column string) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	if column == "" {
		return fmt.Errorf("usage: menu <column>")
	}
	m, err := s.sheet.Suggest(column)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "column %s (%s)\n", m.Column, m.Kind)
	fmt.Fprintf(s.out, "  filter operators: %s\n", strings.Join(m.FilterOps, " "))
	aggs := make([]string, len(m.Aggregates))
	for i, a := range m.Aggregates {
		aggs[i] = string(a)
	}
	fmt.Fprintf(s.out, "  aggregates: %s (levels 1..%d)\n", strings.Join(aggs, " "), m.AggregateLevels)
	var can []string
	if m.CanGroup {
		can = append(can, "group")
	}
	if m.CanSortFinest {
		can = append(can, "sort")
	}
	if m.CanHide {
		can = append(can, "hide")
	}
	if m.CanReinstate {
		can = append(can, "unhide")
	}
	fmt.Fprintf(s.out, "  actions: %s\n", strings.Join(can, " "))
	for _, sel := range m.ExistingSelections {
		fmt.Fprintf(s.out, "  existing filter #%d: %s (modify %d ... to change)\n", sel.ID, sel.Pred.SQL(), sel.ID)
	}
	return nil
}

func (s *Session) export(path string) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	if path == "" {
		return fmt.Errorf("usage: export <file.csv>")
	}
	res, err := s.sheet.Evaluate()
	if err != nil {
		return err
	}
	if err := res.Table.SaveCSV(path); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "exported %d rows to %s\n", res.Table.Len(), path)
	return nil
}

func (s *Session) saveState(path string) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	if path == "" {
		return fmt.Errorf("usage: savestate <file.json>")
	}
	data, err := s.sheet.MarshalState()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved query state to %s\n", path)
	return nil
}

func (s *Session) loadState(path string) error {
	if path == "" {
		return fmt.Errorf("usage: loadstate <file.json>")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Peek at the base name to find the backing table.
	var head struct {
		BaseName string `json:"base_name"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("bad state file: %w", err)
	}
	base, ok := s.tables.Table(head.BaseName)
	if !ok {
		return fmt.Errorf("state needs table %q; load it first", head.BaseName)
	}
	sheet, err := core.RestoreState(base, data)
	if err != nil {
		return err
	}
	s.sheet = sheet
	return s.maybeShow()
}

func (s *Session) sql(explain bool) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	plan, err := sqlgen.Compile(s.sheet)
	if err != nil {
		return err
	}
	if explain {
		for i, st := range plan.Stages {
			fmt.Fprintf(s.out, "stage %d: %s\n", i+1, st)
		}
		return nil
	}
	fmt.Fprintln(s.out, plan.SQL)
	return nil
}

func (s *Session) binary(rest, kind string) error {
	if s.sheet == nil {
		return fmt.Errorf("no current sheet")
	}
	name, tail := splitWord(rest)
	if name == "" {
		return fmt.Errorf("usage: %s <stored-sheet> %s", kind, map[string]string{"join": "on <condition>"}[kind])
	}
	stored, err := s.catalog.Stored(name)
	if err != nil {
		// Fall back to a raw table.
		rel, ok := s.tables.Table(name)
		if !ok {
			return err
		}
		stored = core.New(rel)
	}
	switch kind {
	case "join":
		cond, c2 := splitWord(tail)
		if !strings.EqualFold(cond, "on") || c2 == "" {
			return fmt.Errorf("usage: join <stored-sheet> on <condition>")
		}
		err = s.sheet.Join(stored, c2)
	case "product":
		err = s.sheet.Product(stored)
	case "union":
		err = s.sheet.Union(stored)
	case "minus":
		err = s.sheet.Difference(stored)
	}
	if err != nil {
		return err
	}
	return s.maybeShow()
}

// compile turns a single-block SQL query into a live spreadsheet via the
// Theorem 1 construction: type SQL once, then manipulate the result
// directly.
func (s *Session) compile(query string) error {
	if query == "" {
		return fmt.Errorf("usage: compile <single-block sql>")
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return err
	}
	table, ok := stmt.From.(*sql.TableRef)
	if !ok {
		return fmt.Errorf("compile needs a single FROM table (views handle joins)")
	}
	base, ok2 := s.tables.Table(table.Name)
	if !ok2 {
		return fmt.Errorf("no table %q (see tables)", table.Name)
	}
	prog, err := theorem1.Compile(base, stmt)
	if err != nil {
		return err
	}
	s.sheet = prog.Sheet
	fmt.Fprintln(s.out, "compiled via the Theorem 1 construction:")
	for _, l := range prog.Log {
		fmt.Fprintf(s.out, "  %s\n", l)
	}
	return s.maybeShow()
}

func (s *Session) runSQL(query string) error {
	if query == "" {
		return fmt.Errorf("usage: run <sql>")
	}
	res, err := s.tables.Query(query)
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, res.String())
	return nil
}

func (s *Session) help() {
	fmt.Fprint(s.out, `data
  demo cars | demo tpch [sf]   built-in datasets
  load <file.csv> [name]       load a CSV as the current sheet
  use <table>                  open a loaded table as a fresh sheet
  tables / sheets              list raw tables / stored sheets
manipulation (one spreadsheet-algebra operator each)
  select <predicate>           σ  e.g. select Price < 15000 AND Year = 2005
  group asc|desc <col>...      τ  add a grouping level
  sort <col> [asc|desc]        λ  order within the finest groups
  order <col> <dir> <level>    λ  order at a specific group level
  agg <fn> <col> <level> [as <name>]   η  avg/sum/min/max/count/stddev
  formula <name> = <expr>      θ  computed column
  hide <col> / unhide <col>    π / inverse π
  distinct / nodistinct        δ
  rename <old> <new>
binary operators (with a stored sheet or raw table)
  save <name> / open <name> / close <name>
  join <name> on <cond> | product <name> | union <name> | minus <name>
query modification (Sec. V of the paper)
  filters [col]                list live selection predicates
  modify <id> <predicate>      rewrite one predicate in place
  drop <id>|<computed column>  remove a predicate or computed column
  history / undo / redo        operation log and reversal
inspection
  show [n] | tree | columns | state   current sheet
  menu <column>                contextual operations for a column (Sec. VI)
  savestate <f> / loadstate <f>  persist / restore the query state as JSON
  export <file.csv>            write the evaluated sheet as CSV
  sql | explain                the SQL this sheet's state compiles to
  run <sql>                    execute raw SQL against the loaded tables
  compile <sql>                turn single-block SQL into a live sheet (Thm. 1)
  rows <n> | echo on|off       display settings
  quit
`)
}
