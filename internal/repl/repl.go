// Package repl implements the interactive direct-manipulation session
// behind cmd/sheetmusiq. It is the textual equivalent of the paper's
// Sec. VI interface: every command is one spreadsheet-algebra operator, the
// resulting sheet is shown after each step, history is visible, and any
// stored operator can be modified in place (Sec. V).
//
// The REPL owns only text: parsing command lines and rendering results.
// Execution happens in internal/engine — the same command surface the HTTP
// service (internal/server) drives — so a REPL line and a JSON op body are
// two spellings of the same engine.Op.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sheetmusiq/internal/engine"
)

// Session is one interactive spreadsheet session.
type Session struct {
	out  io.Writer
	eng  *engine.Engine
	rows int  // display limit
	echo bool // show the sheet after every manipulation
}

// New creates a session writing to out, with a private catalog and table
// registry.
func New(out io.Writer) *Session {
	return NewWithEngine(out, engine.New(nil))
}

// NewWithEngine creates a session driving an existing engine — e.g. one
// whose catalog is shared with other sessions.
func NewWithEngine(out io.Writer, eng *engine.Engine) *Session {
	return &Session{out: out, eng: eng, rows: 20, echo: true}
}

// Engine returns the engine the session drives.
func (s *Session) Engine() *engine.Engine { return s.eng }

// Run reads commands until EOF or "quit".
func (s *Session) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(s.out, `SheetMusiq — a direct-manipulation query interface. Type "help".`)
	s.prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			s.prompt()
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.Exec(line); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
		s.prompt()
	}
	return sc.Err()
}

func (s *Session) prompt() {
	name := s.eng.SheetName()
	if name == "" {
		name = "(no sheet)"
	}
	fmt.Fprintf(s.out, "%s> ", name)
}

// do applies one engine op and re-renders (direct manipulation's continuous
// presentation).
func (s *Session) do(op engine.Op) error {
	if _, err := s.eng.Apply(op); err != nil {
		return err
	}
	return s.maybeShow()
}

// Exec runs a single command line.
func (s *Session) Exec(line string) error {
	cmd, rest := splitWord(line)
	switch strings.ToLower(cmd) {
	case "help":
		s.help()
		return nil
	case "demo":
		return s.demo(rest)
	case "load":
		path, name := splitWord(rest)
		if path == "" {
			return fmt.Errorf("usage: load <file.csv> [name]")
		}
		return s.do(engine.Op{Op: "load", Path: path, Name: name})
	case "tables":
		names := s.eng.TableNames()
		sort.Strings(names)
		fmt.Fprintln(s.out, strings.Join(names, " "))
		return nil
	case "use":
		return s.do(engine.Op{Op: "use", Table: rest})
	case "show":
		return s.show(rest)
	case "tree":
		res, err := s.eng.Evaluate()
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, res.RenderTree())
		return nil
	case "select", "filter":
		return s.do(engine.Op{Op: "select", Predicate: rest})
	case "group":
		dirWord, cols := splitWord(rest)
		fields := strings.Fields(cols)
		if dirWord == "" || len(fields) == 0 {
			return fmt.Errorf("usage: group asc|desc <col> [col...]")
		}
		return s.do(engine.Op{Op: "group", Dir: dirWord, Columns: fields})
	case "ungroup":
		return s.do(engine.Op{Op: "ungroup"})
	case "sort":
		col, dirWord := splitWord(rest)
		if col == "" {
			return fmt.Errorf("usage: sort <col> [asc|desc]")
		}
		return s.do(engine.Op{Op: "sort", Column: col, Dir: dirWord})
	case "order":
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return fmt.Errorf("usage: order <col> <asc|desc> <level>")
		}
		level, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("bad level %q", fields[2])
		}
		return s.do(engine.Op{Op: "order", Column: fields[0], Dir: fields[1], Level: level})
	case "agg", "aggregate":
		return s.agg(rest)
	case "formula":
		name, def, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("usage: formula <name> = <expression>")
		}
		eff, err := s.eng.Apply(engine.Op{Op: "formula",
			Name: strings.TrimSpace(name), Formula: strings.TrimSpace(def)})
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "created column %s\n", eff.Column)
		return s.maybeShow()
	case "window":
		name, def, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("usage: window <name> = <fn>(...) OVER (...)")
		}
		eff, err := s.eng.Apply(engine.Op{Op: "window",
			Name: strings.TrimSpace(name), Window: strings.TrimSpace(def)})
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "created column %s\n", eff.Column)
		return s.maybeShow()
	case "hide":
		return s.do(engine.Op{Op: "hide", Column: rest})
	case "unhide", "reinstate":
		return s.do(engine.Op{Op: "unhide", Column: rest})
	case "distinct":
		return s.do(engine.Op{Op: "distinct"})
	case "nodistinct":
		return s.do(engine.Op{Op: "nodistinct"})
	case "rename":
		old, new := splitWord(rest)
		return s.do(engine.Op{Op: "rename", Column: old, Name: strings.TrimSpace(new)})
	case "drop":
		idWord, _ := splitWord(rest)
		if id, err := strconv.Atoi(strings.TrimPrefix(idWord, "#")); err == nil {
			return s.do(engine.Op{Op: "dropsel", ID: id})
		}
		// Otherwise treat as a computed column name.
		return s.do(engine.Op{Op: "dropcol", Column: idWord})
	case "filters", "selections":
		return s.filters(rest)
	case "modify":
		idWord, pred := splitWord(rest)
		id, err := strconv.Atoi(strings.TrimPrefix(idWord, "#"))
		if err != nil || pred == "" {
			return fmt.Errorf("usage: modify <id> <new predicate>   (see filters)")
		}
		return s.do(engine.Op{Op: "modify", ID: id, Predicate: pred})
	case "history":
		return s.history()
	case "undo":
		return s.undoRedo(true)
	case "redo":
		return s.undoRedo(false)
	case "state":
		return s.state()
	case "columns":
		sheet := s.eng.Sheet()
		if sheet == nil {
			return fmt.Errorf("no current sheet")
		}
		fmt.Fprintln(s.out, sheet.VisibleSchema().String())
		return nil
	case "menu", "suggest":
		return s.menu(rest)
	case "savestate":
		if rest == "" {
			return fmt.Errorf("usage: savestate <file.json>")
		}
		eff, err := s.eng.Apply(engine.Op{Op: "savestate", Path: rest})
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, eff.Entry)
		return nil
	case "loadstate":
		if rest == "" {
			return fmt.Errorf("usage: loadstate <file.json>")
		}
		return s.do(engine.Op{Op: "loadstate", Path: rest})
	case "export":
		if rest == "" {
			return fmt.Errorf("usage: export <file.csv>")
		}
		eff, err := s.eng.Apply(engine.Op{Op: "export", Path: rest})
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, eff.Entry)
		return nil
	case "sql":
		text, err := s.eng.SQL()
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, text)
		return nil
	case "explain":
		plan, err := s.eng.Plan()
		if err != nil {
			return err
		}
		for _, line := range plan.Lines() {
			fmt.Fprintln(s.out, line)
		}
		return nil
	case "deps":
		node, to := splitWord(rest)
		deps, err := s.eng.Deps(node, to)
		if err != nil {
			return err
		}
		for _, line := range deps.Lines() {
			fmt.Fprintln(s.out, line)
		}
		return nil
	case "impact":
		if rest == "" {
			return fmt.Errorf("usage: impact <column|sel-id|node>")
		}
		deps, err := s.eng.Deps(rest, "")
		if err != nil {
			return err
		}
		if len(deps.Dependents) == 0 {
			fmt.Fprintf(s.out, "modifying %s invalidates nothing downstream\n", deps.Node)
			return nil
		}
		fmt.Fprintf(s.out, "modifying %s invalidates: %s\n", deps.Node, strings.Join(deps.Dependents, ", "))
		return nil
	case "stages":
		stages, err := s.eng.Stages()
		if err != nil {
			return err
		}
		for i, st := range stages {
			fmt.Fprintf(s.out, "stage %d: %s\n", i+1, st)
		}
		return nil
	case "save":
		if !s.eng.HasSheet() {
			return fmt.Errorf("no current sheet")
		}
		if rest == "" {
			return fmt.Errorf("usage: save <name>")
		}
		_, err := s.eng.Apply(engine.Op{Op: "save", Name: rest})
		return err
	case "open":
		return s.do(engine.Op{Op: "open", Name: rest})
	case "close":
		_, err := s.eng.Apply(engine.Op{Op: "close", Name: rest})
		return err
	case "renamesheet":
		old, new := splitWord(rest)
		if old == "" || new == "" {
			return fmt.Errorf("usage: renamesheet <old> <new>")
		}
		_, err := s.eng.Apply(engine.Op{Op: "renamesheet", Sheet: old, Name: new})
		return err
	case "sheets":
		fmt.Fprintln(s.out, strings.Join(s.eng.StoredNames(), " "))
		return nil
	case "join":
		name, tail := splitWord(rest)
		cond, c2 := splitWord(tail)
		if name == "" || !strings.EqualFold(cond, "on") || c2 == "" {
			return fmt.Errorf("usage: join <stored-sheet> on <condition>")
		}
		return s.do(engine.Op{Op: "join", Sheet: name, On: c2})
	case "product", "union":
		if rest == "" {
			return fmt.Errorf("usage: %s <stored-sheet>", cmd)
		}
		return s.do(engine.Op{Op: strings.ToLower(cmd), Sheet: rest})
	case "minus", "difference":
		if rest == "" {
			return fmt.Errorf("usage: minus <stored-sheet>")
		}
		return s.do(engine.Op{Op: "minus", Sheet: rest})
	case "run":
		if rest == "" {
			return fmt.Errorf("usage: run <sql>")
		}
		res, err := s.eng.RunSQL(rest)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, res.String())
		return nil
	case "compile":
		if rest == "" {
			return fmt.Errorf("usage: compile <single-block sql>")
		}
		eff, err := s.eng.Apply(engine.Op{Op: "compile", Query: rest})
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, "compiled via the Theorem 1 construction:")
		for _, l := range eff.Log {
			fmt.Fprintf(s.out, "  %s\n", l)
		}
		return s.maybeShow()
	case "rows":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n < 1 {
			return fmt.Errorf("usage: rows <n>")
		}
		s.rows = n
		return nil
	case "echo":
		switch strings.TrimSpace(rest) {
		case "on":
			s.echo = true
		case "off":
			s.echo = false
		default:
			return fmt.Errorf("usage: echo on|off")
		}
		return nil
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// maybeShow implements direct manipulation's continuous presentation: the
// sheet re-renders after every operator.
func (s *Session) maybeShow() error {
	if !s.echo || !s.eng.HasSheet() {
		return nil
	}
	return s.show("")
}

func (s *Session) demo(arg string) error {
	which, rest := splitWord(arg)
	op := engine.Op{Op: "demo", Table: which}
	if which == "" {
		op.Table = "cars"
	}
	if which == "tpch" && rest != "" {
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("usage: demo tpch [scale-factor]")
		}
		op.Scale = v
	}
	if _, err := s.eng.Apply(op); err != nil {
		return err
	}
	if op.Table == "tpch" {
		fmt.Fprintln(s.out, "generated tpch tables and study views; `tables` lists them, `use <table>` opens one")
		return nil
	}
	return s.maybeShow()
}

func (s *Session) show(arg string) error {
	limit := s.rows
	if strings.TrimSpace(arg) != "" {
		n, err := strconv.Atoi(strings.TrimSpace(arg))
		if err != nil || n < 1 {
			return fmt.Errorf("usage: show [n]")
		}
		limit = n
	}
	res, err := s.eng.Evaluate()
	if err != nil {
		return err
	}
	text := res.RenderGrouped()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	shown := lines
	if len(lines) > limit+1 {
		shown = lines[:limit+1]
	}
	fmt.Fprintln(s.out, strings.Join(shown, "\n"))
	if len(lines) > limit+1 {
		fmt.Fprintf(s.out, "... (%d rows total; `rows %d` to see more)\n", res.Table.Len(), res.Table.Len())
	}
	return nil
}

func (s *Session) agg(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 3 && !(len(fields) == 5 && strings.EqualFold(fields[3], "as")) {
		return fmt.Errorf("usage: agg <fn> <col> <level> [as <name>]")
	}
	level, err := strconv.Atoi(fields[2])
	if err != nil {
		return fmt.Errorf("bad level %q", fields[2])
	}
	name := ""
	if len(fields) == 5 {
		name = fields[4]
	}
	eff, err := s.eng.Apply(engine.Op{Op: "agg",
		Fn: fields[0], Column: fields[1], Level: level, Name: name})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "created column %s\n", eff.Column)
	return s.maybeShow()
}

func (s *Session) filters(col string) error {
	if !s.eng.HasSheet() {
		return fmt.Errorf("no current sheet")
	}
	sels := s.eng.Selections(strings.TrimSpace(col))
	if len(sels) == 0 {
		fmt.Fprintln(s.out, "(no selections)")
		return nil
	}
	for _, sel := range sels {
		fmt.Fprintf(s.out, "#%d  %s\n", sel.ID, sel.SQL)
	}
	return nil
}

func (s *Session) history() error {
	hist := s.eng.History()
	if !s.eng.HasSheet() {
		return fmt.Errorf("no current sheet")
	}
	if len(hist) == 0 {
		fmt.Fprintln(s.out, "(empty history)")
		return nil
	}
	for i, h := range hist {
		fmt.Fprintf(s.out, "%2d. %s\n", i+1, h)
	}
	return nil
}

func (s *Session) undoRedo(undo bool) error {
	kind, verb := "undo", "undid"
	if !undo {
		kind, verb = "redo", "redid"
	}
	eff, err := s.eng.Apply(engine.Op{Op: kind})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%s: %s\n", verb, eff.Entry)
	return s.maybeShow()
}

func (s *Session) state() error {
	st, err := s.eng.State()
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "sheet %s (version %d)\n", st.Sheet, st.Version)
	fmt.Fprintf(s.out, "visible: %s\n", strings.Join(st.Visible, ", "))
	if len(st.Hidden) > 0 {
		fmt.Fprintf(s.out, "hidden: %s\n", strings.Join(st.Hidden, ", "))
	}
	for _, sel := range st.Selections {
		fmt.Fprintf(s.out, "selection #%d: %s\n", sel.ID, sel.SQL)
	}
	for _, c := range st.Computed {
		switch c.Kind {
		case "aggregate":
			fmt.Fprintf(s.out, "aggregate %s = %s(%s) at level %d\n", c.Name, c.Agg, c.Input, c.Level)
		case "window":
			fmt.Fprintf(s.out, "window %s = %s\n", c.Name, c.Window)
		default:
			fmt.Fprintf(s.out, "formula %s = %s\n", c.Name, c.Formula)
		}
	}
	for _, g := range st.Grouping {
		fmt.Fprintf(s.out, "grouping level %d: {%s} %s\n", g.Level, strings.Join(g.Rel, ", "), g.Dir)
	}
	for _, k := range st.Order {
		fmt.Fprintf(s.out, "order: %s %s\n", k.Column, k.Dir)
	}
	if len(st.DistinctOn) > 0 {
		fmt.Fprintf(s.out, "distinct on: %s\n", strings.Join(st.DistinctOn, ", "))
	}
	return nil
}

func (s *Session) menu(column string) error {
	if !s.eng.HasSheet() {
		return fmt.Errorf("no current sheet")
	}
	if column == "" {
		return fmt.Errorf("usage: menu <column>")
	}
	m, err := s.eng.Menu(column)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "column %s (%s)\n", m.Column, m.Kind)
	fmt.Fprintf(s.out, "  filter operators: %s\n", strings.Join(m.FilterOps, " "))
	fmt.Fprintf(s.out, "  aggregates: %s (levels 1..%d)\n", strings.Join(m.Aggregates, " "), m.AggregateLevels)
	var can []string
	if m.CanGroup {
		can = append(can, "group")
	}
	if m.CanSortFinest {
		can = append(can, "sort")
	}
	if m.CanHide {
		can = append(can, "hide")
	}
	if m.CanReinstate {
		can = append(can, "unhide")
	}
	fmt.Fprintf(s.out, "  actions: %s\n", strings.Join(can, " "))
	for _, sel := range m.Selections {
		fmt.Fprintf(s.out, "  existing filter #%d: %s (modify %d ... to change)\n", sel.ID, sel.SQL, sel.ID)
	}
	return nil
}

func (s *Session) help() {
	fmt.Fprint(s.out, `data
  demo cars | demo tpch [sf]   built-in datasets
  load <file.csv> [name]       load a CSV as the current sheet
  use <table>                  open a loaded table as a fresh sheet
  tables / sheets              list raw tables / stored sheets
manipulation (one spreadsheet-algebra operator each)
  select <predicate>           σ  e.g. select Price < 15000 AND Year = 2005
  group asc|desc <col>...      τ  add a grouping level
  sort <col> [asc|desc]        λ  order within the finest groups
  order <col> <dir> <level>    λ  order at a specific group level
  agg <fn> <col> <level> [as <name>]   η  avg/sum/min/max/count/stddev
  formula <name> = <expr>      θ  computed column
  window <name> = <over-expr>  ω  e.g. window R = RANK() OVER (PARTITION BY Model ORDER BY Price)
  hide <col> / unhide <col>    π / inverse π
  distinct / nodistinct        δ
  rename <old> <new>
binary operators (with a stored sheet or raw table)
  save <name> / open <name> / close <name>
  renamesheet <old> <new>      rename a stored sheet
  join <name> on <cond> | product <name> | union <name> | minus <name>
query modification (Sec. V of the paper)
  filters [col]                list live selection predicates
  modify <id> <predicate>      rewrite one predicate in place
  drop <id>|<computed column>  remove a predicate or computed column
  history / undo / redo        operation log and reversal
inspection
  show [n] | tree | columns | state   current sheet
  menu <column>                contextual operations for a column (Sec. VI)
  savestate <f> / loadstate <f>  persist / restore the query state as JSON
  export <file.csv>            write the evaluated sheet as CSV
  sql | stages                 the SQL this sheet's state compiles to
  explain                      evaluation stage plan: cached vs recomputed
  deps [node [target]]         stage/column dependency graph; with a node,
                               its dependencies/dependents (and path to target)
  impact <column|sel-id>       what a modification of the node invalidates
  run <sql>                    execute raw SQL against the loaded tables
  compile <sql>                turn single-block SQL into a live sheet (Thm. 1)
  rows <n> | echo on|off       display settings
  quit
`)
}
