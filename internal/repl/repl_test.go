package repl

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// session runs a sequence of commands and returns everything printed.
func session(t *testing.T, cmds ...string) string {
	t.Helper()
	var out bytes.Buffer
	s := New(&out)
	for _, c := range cmds {
		if err := s.Exec(c); err != nil {
			fmt := "command %q: %v (output so far:\n%s)"
			t.Fatalf(fmt, c, err, out.String())
		}
	}
	return out.String()
}

// sessionErr runs commands expecting the last to fail.
func sessionErr(t *testing.T, cmds ...string) error {
	t.Helper()
	var out bytes.Buffer
	s := New(&out)
	for i, c := range cmds {
		err := s.Exec(c)
		if i == len(cmds)-1 {
			return err
		}
		if err != nil {
			t.Fatalf("setup command %q: %v", c, err)
		}
	}
	return nil
}

func TestDemoCarsAndSelect(t *testing.T) {
	out := session(t,
		"demo cars",
		"select Price < 15000",
	)
	if !strings.Contains(out, "Jetta") {
		t.Fatalf("expected car rows in output:\n%s", out)
	}
	// After the selection only 304 and 132 remain.
	if strings.Contains(strings.Split(out, "select")[0], "901") && !strings.Contains(out, "304") {
		t.Fatalf("selection result missing:\n%s", out)
	}
}

func TestPaperWalkthrough(t *testing.T) {
	// Sam's full session: filter, group, sort, aggregate, compare, modify.
	out := session(t,
		"demo cars",
		"echo off",
		"select Condition = 'Good' OR Condition = 'Excellent'",
		"select Year >= 2005",
		"group desc Model",
		"group asc Year",
		"sort Price asc",
		"agg avg Price 3 as Avg_Price",
		"select Price < Avg_Price",
		"echo on",
		"show",
		"history",
	)
	if !strings.Contains(out, "Avg_Price") {
		t.Fatalf("aggregate column missing:\n%s", out)
	}
	if !strings.Contains(out, "σ") || !strings.Contains(out, "τ") || !strings.Contains(out, "η") {
		t.Fatalf("history should show operator names:\n%s", out)
	}
}

func TestQueryModificationFlow(t *testing.T) {
	out := session(t,
		"echo off",
		"demo cars",
		"select Year = 2005",
		"select Model = 'Jetta'",
		"filters Year",
		"modify 1 Year = 2006",
		"echo on",
		"show",
	)
	if !strings.Contains(out, "#1") {
		t.Fatalf("filters should list predicate ids:\n%s", out)
	}
	if !strings.Contains(out, "723") || strings.Contains(out, "304 ") {
		t.Fatalf("modification did not flip the year:\n%s", out)
	}
}

func TestUndoRedo(t *testing.T) {
	out := session(t,
		"demo cars",
		"echo off",
		"select Price < 15000",
		"undo",
		"redo",
		"history",
	)
	if !strings.Contains(out, "undid") || !strings.Contains(out, "redid") {
		t.Fatalf("undo/redo feedback missing:\n%s", out)
	}
}

func TestSQLAndExplain(t *testing.T) {
	out := session(t,
		"demo cars",
		"echo off",
		"select Year = 2005",
		"group asc Model",
		"agg avg Price 2 as AvgP",
		"sql",
		"stages",
		"explain",
	)
	if !strings.Contains(out, "SELECT") || !strings.Contains(out, "GROUP BY") {
		t.Fatalf("sql command should print generated SQL:\n%s", out)
	}
	if !strings.Contains(out, "stage 1:") {
		t.Fatalf("stages should print the SQL staging:\n%s", out)
	}
	// explain prints the evaluation pipeline with cache markers and the
	// paper's operator glyphs.
	if !strings.Contains(out, "recomputed") || !strings.Contains(out, "base") {
		t.Fatalf("explain should print the stage plan with markers:\n%s", out)
	}
}

func TestSaveOpenJoin(t *testing.T) {
	out := session(t,
		"echo off",
		"demo cars",
		"select Condition = 'Excellent'",
		"save nice",
		"use cars",
		"minus nice",
		"show",
	)
	// 9 − 4 excellent = 5 rows; the Good Civics remain.
	if !strings.Contains(out, "132") || strings.Contains(out, "872") {
		t.Fatalf("difference with stored sheet wrong:\n%s", out)
	}
}

func TestFormulaHideRename(t *testing.T) {
	out := session(t,
		"echo off",
		"demo cars",
		"formula KPrice = Price / 1000",
		"hide Mileage",
		"rename KPrice Thousands",
		"columns",
	)
	if !strings.Contains(out, "Thousands") || strings.Contains(out, "Mileage") {
		t.Fatalf("columns after formula/hide/rename wrong:\n%s", out)
	}
}

func TestStateListing(t *testing.T) {
	out := session(t,
		"demo cars",
		"echo off",
		"select Year = 2005",
		"group asc Model",
		"agg count ID 2 as N",
		"distinct",
		"state",
	)
	for _, want := range []string{"selection #1", "grouping level 2", "aggregate N", "distinct on"} {
		if !strings.Contains(out, want) {
			t.Fatalf("state output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRawSQL(t *testing.T) {
	out := session(t,
		"demo cars",
		"run SELECT Model, COUNT(*) AS n FROM cars GROUP BY Model ORDER BY Model",
	)
	if !strings.Contains(out, "Civic") || !strings.Contains(out, "3") {
		t.Fatalf("raw SQL output wrong:\n%s", out)
	}
}

func TestTpchDemo(t *testing.T) {
	out := session(t,
		"demo tpch 0.001",
		"tables",
		"use lineitem",
		"echo off",
		"select l_quantity < 10",
		"group asc l_returnflag",
		"agg sum l_quantity 2 as q",
	)
	if !strings.Contains(out, "lineitem") || !strings.Contains(out, "v_stock") {
		t.Fatalf("tpch tables/views missing:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"select Price < 1"},              // no sheet yet
		{"demo cars", "select Nope = 1"},  // bad predicate
		{"demo cars", "group asc Nope"},   // bad column
		{"demo cars", "agg avg Price 5"},  // bad level
		{"demo cars", "modify 9 Year=1"},  // no such selection
		{"demo cars", "open nothere"},     // no stored sheet
		{"demo cars", "frobnicate"},       // unknown command
		{"demo cars", "sort"},             // missing args
		{"demo cars", "formula X Price"},  // missing '='
		{"demo cars", "rows zero"},        // bad number
		{"load /no/such/file.csv"},        // missing file
		{"demo cars", "run SELEC * FROM"}, // bad SQL
	}
	for _, cmds := range cases {
		if err := sessionErr(t, cmds...); err == nil {
			t.Errorf("command sequence %v should fail", cmds)
		}
	}
}

func TestRunLoop(t *testing.T) {
	var out bytes.Buffer
	in := strings.NewReader("demo cars\nselect Price < 15000\nquit\n")
	if err := New(&out).Run(in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cars>") {
		t.Fatalf("prompt missing:\n%s", out.String())
	}
}

func TestEchoToggleAndRows(t *testing.T) {
	out := session(t,
		"demo cars",
		"echo off",
		"rows 2",
		"show",
	)
	if !strings.Contains(out, "rows total") {
		t.Fatalf("row limiting not applied:\n%s", out)
	}
}

func TestMenuCommand(t *testing.T) {
	out := session(t,
		"echo off",
		"demo cars",
		"select Price < 16000",
		"group asc Model",
		"menu Price",
		"menu Model",
	)
	if !strings.Contains(out, "BETWEEN") {
		t.Fatalf("numeric menu should offer BETWEEN:\n%s", out)
	}
	if !strings.Contains(out, "existing filter #1") {
		t.Fatalf("menu should surface existing predicates:\n%s", out)
	}
	if !strings.Contains(out, "LIKE") {
		t.Fatalf("text menu should offer LIKE:\n%s", out)
	}
	if err := sessionErr(t, "demo cars", "menu Nope"); err == nil {
		t.Fatal("menu over unknown column must fail")
	}
}

func TestSaveLoadState(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/session.json"
	out := session(t,
		"echo off",
		"demo cars",
		"select Year = 2005",
		"group asc Model",
		"agg avg Price 2 as AvgP",
		"savestate "+path,
	)
	if !strings.Contains(out, "saved query state") {
		t.Fatalf("savestate output: %s", out)
	}
	// A fresh session restores it after loading the base table.
	out2 := session(t,
		"echo off",
		"demo cars",
		"loadstate "+path,
		"state",
	)
	if !strings.Contains(out2, "aggregate AvgP") || !strings.Contains(out2, "selection #1") {
		t.Fatalf("restored state incomplete:\n%s", out2)
	}
	// Restoring without the base loaded fails cleanly.
	if err := sessionErr(t, "loadstate "+path); err == nil {
		t.Fatal("loadstate without the base table must fail")
	}
}

func TestExportCSV(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.csv"
	out := session(t,
		"echo off",
		"demo cars",
		"select Model = 'Civic'",
		"export "+path,
	)
	if !strings.Contains(out, "exported 3 rows") {
		t.Fatalf("export output: %s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Civic") {
		t.Fatalf("exported file content:\n%s", data)
	}
	if err := sessionErr(t, "echo off", "demo cars", "export"); err == nil {
		t.Fatal("export without a path must fail")
	}
}

func TestTreeCommand(t *testing.T) {
	out := session(t,
		"echo off",
		"demo cars",
		"group desc Model",
		"group asc Year",
		"tree",
	)
	if !strings.Contains(out, "▾ Model = Jetta") {
		t.Fatalf("tree output:\n%s", out)
	}
}

func TestCompileCommand(t *testing.T) {
	out := session(t,
		"echo off",
		"demo cars",
		"compile SELECT Model, AVG(Price) AS ap FROM cars WHERE Year = 2005 GROUP BY Model ORDER BY Model",
		"state",
		"filters Year",
		"modify 1 Year = 2006",
		"show",
	)
	if !strings.Contains(out, "Theorem 1") || !strings.Contains(out, "step 3: τ Model") {
		t.Fatalf("compile output:\n%s", out)
	}
	// The compiled sheet is modifiable like any other: after switching the
	// year to 2006 the Civic average is 15500 (not 2005's 13500).
	if !strings.Contains(out, "15500") || strings.Contains(out, "13500") {
		t.Fatalf("modified compiled sheet:\n%s", out)
	}
	if err := sessionErr(t, "demo cars", "compile SELECT * FROM nothere"); err == nil {
		t.Fatal("compile against a missing table must fail")
	}
	if err := sessionErr(t, "demo cars", "compile SELECT DISTINCT Model FROM cars"); err == nil {
		t.Fatal("non-core SQL must fail to compile")
	}
}

func TestWindowCommand(t *testing.T) {
	out := session(t,
		"echo off",
		"demo cars",
		"window R = RANK() OVER (PARTITION BY Model ORDER BY Price)",
		"select R <= 2",
		"state",
		"show",
	)
	if !strings.Contains(out, "created column R") {
		t.Fatalf("window command should report its column:\n%s", out)
	}
	if !strings.Contains(out, "window R = RANK() OVER (PARTITION BY Model ORDER BY Price)") {
		t.Fatalf("state should list the ω column:\n%s", out)
	}
	// Top-2 per model: both cheap Civics, both cheap Jettas survive.
	for _, id := range []string{"304", "872", "132", "879"} {
		if !strings.Contains(out, id) {
			t.Fatalf("top-2-per-group grid missing car %s:\n%s", id, out)
		}
	}
	if strings.Contains(strings.SplitN(out, "select R <= 2", 2)[len(strings.SplitN(out, "select R <= 2", 2))-1], " 901 ") {
		t.Fatalf("car 901 should be filtered out:\n%s", out)
	}
}

func TestWindowCommandErrors(t *testing.T) {
	if err := sessionErr(t, "demo cars", "window R RANK() OVER (ORDER BY Price)"); err == nil {
		t.Fatal("missing '=' should fail")
	}
	if err := sessionErr(t, "demo cars", "window R = Price + 1"); err == nil {
		t.Fatal("non-window expression should fail")
	}
}
