package expr

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer output.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp      // punctuation operator
	TokKeyword // reserved word, upper-cased
)

// Token is one lexeme of expression or SQL text.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

var keywords = map[string]bool{
	"AND": true, "OR": true, "NOT": true, "LIKE": true, "IN": true,
	"BETWEEN": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"DATE": true,
	// SQL statement keywords, reserved here so the SQL parser can share the
	// lexer and so that bare column names never shadow them.
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DISTINCT": true, "AS": true, "JOIN": true, "ON": true, "CROSS": true,
	"INNER": true, "UNION": true, "EXCEPT": true, "ALL": true, "EXISTS": true,
	"OFFSET": true,
}

func keyword(s string) bool { return keywords[s] }

// Lex scans src fully, returning the token stream terminated by TokEOF, or
// an error with byte position on bad input.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (Token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start &&
				(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		if keyword(strings.ToUpper(word)) {
			return Token{Kind: TokKeyword, Text: strings.ToUpper(word), Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case c == '\'':
		var b strings.Builder
		l.pos++
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("expr: unterminated string at %d", start)
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
	case c == '"':
		var b strings.Builder
		l.pos++
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("expr: unterminated quoted identifier at %d", start)
			}
			if l.src[l.pos] == '"' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
					b.WriteByte('"')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokIdent, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
	}
	if l.pos+1 < len(l.src) {
		switch two := l.src[l.pos : l.pos+2]; two {
		case "<=", ">=", "<>", "!=", "||":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return Token{Kind: TokOp, Text: two, Pos: start}, nil
		}
	}
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("expr: unexpected character %q at %d", c, start)
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '.' }
