package expr

import (
	"fmt"

	"sheetmusiq/internal/value"
)

// KindResolver maps a column name to its kind. It returns false for unknown
// columns.
type KindResolver func(name string) (value.Kind, bool)

// Check infers the result kind of e against the given column kinds,
// rejecting unknown columns, arity errors, and operand-kind mismatches.
// NULL literals check as KindNull, which unifies with anything.
func Check(e Expr, resolve KindResolver) (value.Kind, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val.Kind(), nil
	case *ColumnRef:
		k, ok := resolve(n.Name)
		if !ok {
			return value.KindNull, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return k, nil
	case *Star:
		return value.KindNull, fmt.Errorf("expr: * is only valid inside COUNT(*)")
	case *Unary:
		k, err := Check(n.X, resolve)
		if err != nil {
			return value.KindNull, err
		}
		if n.Op == OpNeg {
			if k != value.KindNull && !k.Numeric() {
				return value.KindNull, fmt.Errorf("expr: cannot negate %s", k)
			}
			return k, nil
		}
		if k != value.KindNull && k != value.KindBool {
			return value.KindNull, fmt.Errorf("expr: NOT over %s", k)
		}
		return value.KindBool, nil
	case *Binary:
		lk, err := Check(n.L, resolve)
		if err != nil {
			return value.KindNull, err
		}
		rk, err := Check(n.R, resolve)
		if err != nil {
			return value.KindNull, err
		}
		return checkBinary(n.Op, lk, rk)
	case *IsNull:
		if _, err := Check(n.X, resolve); err != nil {
			return value.KindNull, err
		}
		return value.KindBool, nil
	case *InList:
		xk, err := Check(n.X, resolve)
		if err != nil {
			return value.KindNull, err
		}
		for _, it := range n.Items {
			ik, err := Check(it, resolve)
			if err != nil {
				return value.KindNull, err
			}
			if !comparable(xk, ik) {
				return value.KindNull, fmt.Errorf("expr: IN list item kind %s does not match %s", ik, xk)
			}
		}
		return value.KindBool, nil
	case *Between:
		xk, err := Check(n.X, resolve)
		if err != nil {
			return value.KindNull, err
		}
		lk, err := Check(n.Lo, resolve)
		if err != nil {
			return value.KindNull, err
		}
		hk, err := Check(n.Hi, resolve)
		if err != nil {
			return value.KindNull, err
		}
		if !comparable(xk, lk) || !comparable(xk, hk) {
			return value.KindNull, fmt.Errorf("expr: BETWEEN bounds incompatible with %s", xk)
		}
		return value.KindBool, nil
	case *FuncCall:
		return checkFunc(n, resolve)
	case *WindowCall:
		return checkWindow(n, resolve)
	case *Subquery:
		// The inner statement is analysed by the SQL layer at execution;
		// its scalar result unifies with any kind here.
		return value.KindNull, nil
	case *Exists:
		return value.KindBool, nil
	case *InSubquery:
		if _, err := Check(n.X, resolve); err != nil {
			return value.KindNull, err
		}
		return value.KindBool, nil
	}
	return value.KindNull, fmt.Errorf("expr: cannot check %T", e)
}

func comparable(a, b value.Kind) bool {
	if a == value.KindNull || b == value.KindNull {
		return true
	}
	if a.Numeric() && b.Numeric() {
		return true
	}
	return a == b
}

func checkBinary(op BinaryOp, lk, rk value.Kind) (value.Kind, error) {
	switch op {
	case OpAnd, OpOr:
		if (lk != value.KindBool && lk != value.KindNull) || (rk != value.KindBool && rk != value.KindNull) {
			return value.KindNull, fmt.Errorf("expr: %s requires booleans, got %s and %s", op, lk, rk)
		}
		return value.KindBool, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if !comparable(lk, rk) {
			return value.KindNull, fmt.Errorf("expr: cannot compare %s with %s", lk, rk)
		}
		return value.KindBool, nil
	case OpLike:
		if (lk != value.KindString && lk != value.KindNull) || (rk != value.KindString && rk != value.KindNull) {
			return value.KindNull, fmt.Errorf("expr: LIKE requires strings, got %s and %s", lk, rk)
		}
		return value.KindBool, nil
	case OpConcat:
		return value.KindString, nil
	case OpAdd, OpSub:
		// Date arithmetic: date ± int, date − date.
		if lk == value.KindDate && rk == value.KindInt {
			return value.KindDate, nil
		}
		if op == OpSub && lk == value.KindDate && rk == value.KindDate {
			return value.KindInt, nil
		}
		fallthrough
	case OpMul, OpDiv, OpMod:
		if lk == value.KindNull || rk == value.KindNull {
			return value.KindNull, nil
		}
		if !lk.Numeric() || !rk.Numeric() {
			return value.KindNull, fmt.Errorf("expr: %s requires numerics, got %s and %s", op, lk, rk)
		}
		if op == OpDiv {
			// Division may promote; report FLOAT conservatively.
			return value.KindFloat, nil
		}
		if lk == value.KindInt && rk == value.KindInt {
			return value.KindInt, nil
		}
		return value.KindFloat, nil
	}
	return value.KindNull, fmt.Errorf("expr: unknown operator %q", op)
}

func checkFunc(f *FuncCall, resolve KindResolver) (value.Kind, error) {
	if AggregateNames[f.Name] {
		return value.KindNull, fmt.Errorf("expr: aggregate %s not allowed in a row context", f.Name)
	}
	kinds := make([]value.Kind, len(f.Args))
	for i, a := range f.Args {
		k, err := Check(a, resolve)
		if err != nil {
			return value.KindNull, err
		}
		kinds[i] = k
	}
	switch f.Name {
	case "ABS":
		if len(kinds) == 1 {
			return kinds[0], nil
		}
	case "ROUND":
		if len(kinds) == 1 || len(kinds) == 2 {
			return value.KindFloat, nil
		}
	case "FLOOR", "CEIL", "LENGTH", "YEAR", "MONTH", "DAY":
		if len(kinds) == 1 {
			return value.KindInt, nil
		}
	case "UPPER", "LOWER", "TRIM":
		if len(kinds) == 1 {
			return value.KindString, nil
		}
	case "REPLACE":
		if len(kinds) == 3 {
			return value.KindString, nil
		}
	case "SIGN":
		if len(kinds) == 1 {
			return value.KindInt, nil
		}
	case "POWER":
		if len(kinds) == 2 {
			return value.KindFloat, nil
		}
	case "SUBSTR":
		if len(kinds) == 2 || len(kinds) == 3 {
			return value.KindString, nil
		}
	case "IF":
		if len(kinds) == 3 {
			if kinds[0] != value.KindBool && kinds[0] != value.KindNull {
				return value.KindNull, fmt.Errorf("expr: IF condition must be boolean, got %s", kinds[0])
			}
			a, b := kinds[1], kinds[2]
			switch {
			case a == b:
				return a, nil
			case a == value.KindNull:
				return b, nil
			case b == value.KindNull:
				return a, nil
			case a.Numeric() && b.Numeric():
				return value.KindFloat, nil
			}
			return value.KindNull, fmt.Errorf("expr: IF branches disagree on type (%s vs %s)", a, b)
		}
	case "COALESCE":
		if len(kinds) >= 1 {
			for _, k := range kinds {
				if k != value.KindNull {
					return k, nil
				}
			}
			return value.KindNull, nil
		}
	default:
		return value.KindNull, fmt.Errorf("expr: unknown function %s", f.Name)
	}
	return value.KindNull, fmt.Errorf("expr: wrong arity for %s", f.Name)
}
