package expr

import (
	"testing"

	"sheetmusiq/internal/value"
)

// FuzzParse checks the lexer/parser never panic and that anything that
// parses renders to SQL that reparses to an equally-evaluating tree.
// The seed corpus runs on every `go test`; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Price < 18000 AND (Model = 'Jetta' OR NOT Sold)",
		"a BETWEEN 1 AND 2 OR b IN ('x','y','z')",
		"COALESCE(Note, 'fallback') || '!'",
		"-x * (y + 2.5e3) % 7",
		"When > DATE '2005-01-01'",
		"f(g(1), *, h())",
		"a IS NOT NULL AND NOT b IS NULL",
		"'it''s' LIKE '%''s'",
		`"quoted ident" = 1`,
		"((((1))))",
		"1 <",
		")",
		"NOT",
		"IN (",
		"x'",
		"\"",
		"1e999",
		"a.b.c.d = 1",
		"RANK() OVER (PARTITION BY Model ORDER BY Price)",
		"ROW_NUMBER() OVER (ORDER BY Price DESC, Model)",
		"SUM(Price) OVER (PARTITION BY Model ORDER BY Price ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)",
		"AVG(Price) OVER (ORDER BY Price ROWS BETWEEN UNBOUNDED PRECEDING AND 1 FOLLOWING)",
		"MAX(Price) OVER ()",
		"COUNT(*) OVER (PARTITION BY Model)",
		"RANK() OVER",
		"SUM(Price) OVER (ROWS BETWEEN",
		"RANK() OVER (ORDER BY)",
		"DENSE_RANK() OVER (PARTITION BY)",
		"SUM(x) OVER (ORDER BY y ROWS BETWEEN CURRENT ROW AND UNBOUNDED PRECEDING)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	env := MapEnv{
		"Price": value.NewInt(15000), "Model": value.NewString("Jetta"),
		"Sold": value.NewBool(false), "a": value.NewInt(1),
		"b": value.NewString("x"), "x": value.NewInt(2),
		"y": value.NewFloat(3), "Note": value.Null,
		"When": value.NewDate(2005, 6, 15),
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		sql := e.SQL()
		e2, err := Parse(sql)
		if err != nil {
			t.Fatalf("rendering %q of %q does not reparse: %v", sql, src, err)
		}
		v1, err1 := Eval(e, env)
		v2, err2 := Eval(e2, env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("eval error mismatch for %q: %v vs %v", src, err1, err2)
		}
		if err1 == nil && !value.Equal(v1, v2) {
			t.Fatalf("eval mismatch for %q: %v vs %v", src, v1, v2)
		}
	})
}
