package expr

import (
	"reflect"
	"testing"
)

func TestDepsCanonicalises(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"Price / 1000", []string{"price"}},
		{"price + PRICE * Price", []string{"price"}}, // case-insensitive dedup
		{"Mileage < 60000 AND Year > 2002", []string{"mileage", "year"}},
		{"Year - 2002 > Mileage / 10000", []string{"mileage", "year"}}, // sorted, not source order
		{"UPPER(Model) = 'JETTA'", []string{"model"}},
		{"Price BETWEEN 1000 AND 2000", []string{"price"}},
		{"Condition IN ('Good', 'Fair')", []string{"condition"}},
		{"1 + 2", nil},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := Deps(e); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Deps(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestProgramDepsMatchesSource(t *testing.T) {
	e, err := Parse("Price - Mileage / 10")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(e, func(string) (int, bool) { return 0, true })
	if err != nil {
		t.Fatal(err)
	}
	want := Deps(e)
	got := p.Deps()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Program.Deps = %v, want %v", got, want)
	}
	// The returned slice is a copy: mutating it must not corrupt the program.
	got[0] = "clobbered"
	if again := p.Deps(); !reflect.DeepEqual(again, want) {
		t.Fatalf("Program.Deps leaked internal state: %v", again)
	}
}
