package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"sheetmusiq/internal/value"
)

func env() MapEnv {
	return MapEnv{
		"Price":     value.NewInt(15000),
		"Year":      value.NewInt(2005),
		"Model":     value.NewString("Jetta"),
		"Mileage":   value.NewInt(50000),
		"Condition": value.NewString("Excellent"),
		"Ratio":     value.NewFloat(0.5),
		"Sold":      value.NewBool(false),
		"When":      value.NewDate(2005, 6, 15),
		"Note":      value.Null,
	}
}

func evalStr(t *testing.T, src string) value.Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, env())
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestParseAndEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"1 + 2 * 3", value.NewInt(7)},
		{"(1 + 2) * 3", value.NewInt(9)},
		{"10 / 4", value.NewFloat(2.5)},
		{"10 / 5", value.NewInt(2)},
		{"7 % 3", value.NewInt(1)},
		{"-5 + 2", value.NewInt(-3)},
		{"- (2 + 3)", value.NewInt(-5)},
		{"2.5 * 2", value.NewFloat(5)},
		{"Price * 2", value.NewInt(30000)},
		{"Price * Ratio", value.NewFloat(7500)},
		{"'a' || 'b' || 1", value.NewString("ab1")},
	}
	for _, tc := range cases {
		got := evalStr(t, tc.src)
		if !value.Equal(got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestParseAndEvalPredicates(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"Price < 18000", true},
		{"Price >= 15000 AND Year = 2005", true},
		{"Price > 18000 OR Model = 'Jetta'", true},
		{"NOT Price > 18000", true},
		{"Model = 'Civic'", false},
		{"Model <> 'Civic'", true},
		{"Model != 'Civic'", true},
		{"Condition = 'Good' OR Condition = 'Excellent'", true},
		{"Price BETWEEN 14000 AND 16000", true},
		{"Price NOT BETWEEN 14000 AND 16000", false},
		{"Model IN ('Jetta', 'Civic')", true},
		{"Model NOT IN ('Jetta', 'Civic')", false},
		{"Model LIKE 'J%'", true},
		{"Model LIKE '%tt_'", true},
		{"Model NOT LIKE 'C%'", true},
		{"Note IS NULL", true},
		{"Note IS NOT NULL", false},
		{"Price IS NULL", false},
		{"When > DATE '2005-01-01'", true},
		{"When = DATE '2005-06-15'", true},
		{"Sold = FALSE", true},
		{"Price * 2 < Mileage", true},
		{"Price * 4 < Mileage", false},
		{"NOT Sold AND Price < 16000", true},
	}
	for _, tc := range cases {
		got, err := EvalBool(MustParse(tc.src), env())
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestNullComparisonsAreUnknown(t *testing.T) {
	// NULL comparisons must yield NULL, and WHERE treats NULL as false.
	v := evalStr(t, "Note = 5")
	if !v.IsNull() {
		t.Errorf("NULL = 5 should be NULL, got %v", v)
	}
	ok, err := EvalBool(MustParse("Note = 5 OR TRUE"), env())
	if err != nil || !ok {
		t.Errorf("unknown OR true should be true: %v, %v", ok, err)
	}
	ok, _ = EvalBool(MustParse("Note = 5 AND TRUE"), env())
	if ok {
		t.Error("unknown AND true must not satisfy WHERE")
	}
	v = evalStr(t, "NOT (Note = 5)")
	if !v.IsNull() {
		t.Errorf("NOT unknown should be NULL, got %v", v)
	}
}

func TestInListWithNull(t *testing.T) {
	// 1 IN (2, NULL) is unknown; 1 IN (1, NULL) is true.
	if v := evalStr(t, "1 IN (2, NULL)"); !v.IsNull() {
		t.Errorf("1 IN (2, NULL) = %v, want NULL", v)
	}
	if v := evalStr(t, "1 IN (1, NULL)"); !v.Bool() {
		t.Errorf("1 IN (1, NULL) = %v, want true", v)
	}
	// NOT IN with NULL stays unknown.
	if v := evalStr(t, "1 NOT IN (2, NULL)"); !v.IsNull() {
		t.Errorf("1 NOT IN (2, NULL) = %v, want NULL", v)
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"ABS(-4)", value.NewInt(4)},
		{"ABS(-4.5)", value.NewFloat(4.5)},
		{"ROUND(2.567, 2)", value.NewFloat(2.57)},
		{"ROUND(2.5)", value.NewFloat(3)},
		{"FLOOR(2.9)", value.NewInt(2)},
		{"CEIL(2.1)", value.NewInt(3)},
		{"UPPER('abc')", value.NewString("ABC")},
		{"LOWER('AbC')", value.NewString("abc")},
		{"LENGTH('hello')", value.NewInt(5)},
		{"SUBSTR('hello', 2, 3)", value.NewString("ell")},
		{"SUBSTR('hello', 4)", value.NewString("lo")},
		{"COALESCE(NULL, NULL, 7)", value.NewInt(7)},
		{"COALESCE(Note, 'fallback')", value.NewString("fallback")},
		{"YEAR(When)", value.NewInt(2005)},
		{"MONTH(When)", value.NewInt(6)},
		{"DAY(When)", value.NewInt(15)},
		{"YEAR(DATE '2007-02-03')", value.NewInt(2007)},
		{"TRIM('  pad  ')", value.NewString("pad")},
		{"REPLACE('banana', 'an', 'op')", value.NewString("bopopa")},
		{"SIGN(-3)", value.NewInt(-1)},
		{"SIGN(0)", value.NewInt(0)},
		{"SIGN(2.5)", value.NewInt(1)},
		{"POWER(2, 10)", value.NewFloat(1024)},
	}
	for _, tc := range cases {
		got := evalStr(t, tc.src)
		if !value.Equal(got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "'unterminated", "1 ?? 2", "IN (1)",
		"Price BETWEEN 1", "UNKNOWNKW(", "a b", "1 = = 2", `"unclosed`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{
		"Missing = 1",       // unknown column
		"NOSUCHFN(1)",       // unknown function
		"ABS('a')",          // wrong kind
		"1 LIKE 'x'",        // LIKE over numbers
		"NOT 5",             // NOT over int
		"SUM(Price)",        // aggregate in row context
		"1 + 'a'",           // arithmetic over strings
		"SUBSTR('x', 'y')",  // wrong arg kind
		"TRIM(5)",           // wrong kind
		"REPLACE('a', 'b')", // wrong arity
		"POWER('a', 2)",     // wrong kind
		"Model > 5",         // string vs int comparison
		"1 / 0",             // division by zero
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q) unexpectedly failed: %v", src, err)
			continue
		}
		if _, err := Eval(e, env()); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestCheck(t *testing.T) {
	resolve := func(name string) (value.Kind, bool) {
		v, ok := env().Lookup(name)
		if !ok {
			return value.KindNull, false
		}
		if v.IsNull() {
			return value.KindString, true
		}
		return v.Kind(), true
	}
	good := map[string]value.Kind{
		"Price < 18000":            value.KindBool,
		"Price + 1":                value.KindInt,
		"Price / 2":                value.KindFloat,
		"Price * Ratio":            value.KindFloat,
		"Model || '!'":             value.KindString,
		"Model LIKE 'J%'":          value.KindBool,
		"Price BETWEEN 1 AND 2":    value.KindBool,
		"Model IN ('a','b')":       value.KindBool,
		"Note IS NULL":             value.KindBool,
		"YEAR(When)":               value.KindInt,
		"When + 30":                value.KindDate,
		"When - DATE '2005-01-01'": value.KindInt,
		"COALESCE(NULL, 1)":        value.KindInt,
		"-Price":                   value.KindInt,
	}
	for src, want := range good {
		k, err := Check(MustParse(src), resolve)
		if err != nil {
			t.Errorf("Check(%q): %v", src, err)
			continue
		}
		if k != want {
			t.Errorf("Check(%q) = %v, want %v", src, k, want)
		}
	}
	bad := []string{
		"Missing = 1", "Model + 1", "NOT Price", "Price AND TRUE",
		"Model > 5", "1 LIKE 'x'", "ABS(1, 2)", "Price BETWEEN 'a' AND 'b'",
		"Model IN (1)", "SUM(Price)", "NOSUCHFN(1)",
	}
	for _, src := range bad {
		if _, err := Check(MustParse(src), resolve); err == nil {
			t.Errorf("Check(%q) should fail", src)
		}
	}
}

func TestColumnsAndReferences(t *testing.T) {
	e := MustParse("Price < 18000 AND (Model = 'Jetta' OR price > 1)")
	cols := Columns(e)
	if len(cols) != 2 {
		t.Fatalf("Columns = %v, want [Price Model] (case-insensitive dedup)", cols)
	}
	if !References(e, "model") || !References(e, "PRICE") {
		t.Error("References should be case-insensitive")
	}
	if References(e, "Year") {
		t.Error("Year is not referenced")
	}
}

func TestSQLRoundTrip(t *testing.T) {
	exprs := []string{
		"Price < 18000 AND (Model = 'Jetta' OR NOT Sold)",
		"Model LIKE 'J%'",
		"Price BETWEEN 14000 AND 16000",
		"Model IN ('Jetta', 'Civic')",
		"Note IS NOT NULL",
		"ABS(Price - Mileage) + 1",
		"'it''s' || Model",
		"When > DATE '2005-01-01'",
		"Model NOT IN ('a')",
		"Price * -1 <> 3",
	}
	for _, src := range exprs {
		e1 := MustParse(src)
		sql := e1.SQL()
		e2, err := Parse(sql)
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", src, sql, err)
			continue
		}
		v1, err1 := Eval(e1, env())
		v2, err2 := Eval(e2, env())
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%q round trip error mismatch: %v vs %v", src, err1, err2)
			continue
		}
		if err1 == nil && !value.Equal(v1, v2) {
			t.Errorf("%q round trip value mismatch: %v vs %v", src, v1, v2)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	e := MustParse(`"Avg Price" > 10`)
	cols := Columns(e)
	if len(cols) != 1 || cols[0] != "Avg Price" {
		t.Fatalf("quoted ident = %v", cols)
	}
	sql := e.SQL()
	if !strings.Contains(sql, `"Avg Price"`) {
		t.Errorf("SQL rendering should requote: %s", sql)
	}
	if _, err := Parse(sql); err != nil {
		t.Errorf("requoted SQL must reparse: %v", err)
	}
}

func TestDottedIdentifiers(t *testing.T) {
	e := MustParse("orders.o_custkey = customer.c_custkey")
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "orders.o_custkey" {
		t.Fatalf("dotted columns = %v", cols)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%c%", true},
		{"special", "%c_a%", true},
	}
	for _, tc := range cases {
		if got := likeMatch(tc.s, tc.p); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.s, tc.p, got, tc.want)
		}
	}
}

func TestCountStarParses(t *testing.T) {
	e, err := Parse("COUNT(*)")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := e.(*FuncCall)
	if !ok || f.Name != "COUNT" || len(f.Args) != 1 {
		t.Fatalf("COUNT(*) parsed as %T %v", e, e)
	}
	if _, ok := f.Args[0].(*Star); !ok {
		t.Fatal("COUNT(*) argument should be Star")
	}
	if !IsAggregateCall(e) || !ContainsAggregate(e) {
		t.Error("COUNT(*) must be recognised as an aggregate")
	}
}

func TestCountDistinctParses(t *testing.T) {
	e := MustParse("COUNT(DISTINCT Model)")
	f := e.(*FuncCall)
	if f.Name != "COUNT_DISTINCT" {
		t.Fatalf("COUNT(DISTINCT x) name = %s", f.Name)
	}
}

func TestNotPrecedence(t *testing.T) {
	// NOT binds tighter than AND: NOT a AND b == (NOT a) AND b.
	ok, err := EvalBool(MustParse("NOT Sold AND TRUE"), env())
	if err != nil || !ok {
		t.Errorf("NOT Sold AND TRUE = %v, %v", ok, err)
	}
	// AND binds tighter than OR.
	ok, _ = EvalBool(MustParse("FALSE AND FALSE OR TRUE"), env())
	if !ok {
		t.Error("FALSE AND FALSE OR TRUE should be TRUE")
	}
}

// Property: the SQL rendering of a randomly built arithmetic tree reparses
// and evaluates to the same value.
func TestQuickSQLRoundTripArithmetic(t *testing.T) {
	f := func(a, b, c int16, pick uint8) bool {
		ops := []BinaryOp{OpAdd, OpSub, OpMul}
		op1 := ops[int(pick)%3]
		op2 := ops[int(pick/3)%3]
		e := &Binary{
			Op: op1,
			L:  &Literal{Val: value.NewInt(int64(a))},
			R: &Binary{Op: op2,
				L: &Literal{Val: value.NewInt(int64(b))},
				R: &Literal{Val: value.NewInt(int64(c))}},
		}
		v1, err := Eval(e, MapEnv{})
		if err != nil {
			return true // overflow-free ops only; shouldn't happen
		}
		e2, err := Parse(e.SQL())
		if err != nil {
			return false
		}
		v2, err := Eval(e2, MapEnv{})
		if err != nil {
			return false
		}
		return value.Equal(v1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: likeMatch with a pattern equal to the string always matches when
// the string has no wildcards.
func TestQuickLikeSelfMatch(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
