package expr

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/value"
)

// Env resolves column references during evaluation.
type Env interface {
	// Lookup returns the value bound to a column name, and whether the
	// name is bound at all. Lookups are case-insensitive.
	Lookup(name string) (value.Value, bool)
}

// MapEnv is an Env over a plain map (case-insensitive keys).
type MapEnv map[string]value.Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (value.Value, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	for k, v := range m {
		if strings.EqualFold(k, name) {
			return v, true
		}
	}
	return value.Null, false
}

// Eval evaluates e against env, applying SQL three-valued NULL semantics:
// comparisons with NULL yield NULL, AND/OR/NOT follow Kleene logic.
func Eval(e Expr, env Env) (value.Value, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, nil
	case *ColumnRef:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return value.Null, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return v, nil
	case *Star:
		return value.Null, fmt.Errorf("expr: * is only valid inside COUNT(*)")
	case *Unary:
		x, err := Eval(n.X, env)
		if err != nil {
			return value.Null, err
		}
		if n.Op == OpNeg {
			return value.Neg(x)
		}
		t, err := value.TruthOf(x)
		if err != nil {
			return value.Null, err
		}
		return t.Not().Value(), nil
	case *Binary:
		return evalBinary(n, env)
	case *IsNull:
		x, err := Eval(n.X, env)
		if err != nil {
			return value.Null, err
		}
		res := x.IsNull()
		if n.Negate {
			res = !res
		}
		return value.NewBool(res), nil
	case *InList:
		return evalIn(n, env)
	case *Between:
		x, err := Eval(n.X, env)
		if err != nil {
			return value.Null, err
		}
		lo, err := Eval(n.Lo, env)
		if err != nil {
			return value.Null, err
		}
		hi, err := Eval(n.Hi, env)
		if err != nil {
			return value.Null, err
		}
		ge, err := compare(x, lo, OpGe)
		if err != nil {
			return value.Null, err
		}
		le, err := compare(x, hi, OpLe)
		if err != nil {
			return value.Null, err
		}
		t := ge.And(le)
		if n.Negate {
			t = t.Not()
		}
		return t.Value(), nil
	case *FuncCall:
		return evalFunc(n, env)
	case *WindowCall:
		return value.Null, fmt.Errorf("expr: window function %s not allowed in a row context", n.Func)
	case *Subquery:
		return evalScalarSubquery(n, env)
	case *Exists:
		return evalExists(n, env)
	case *InSubquery:
		return evalInSubquery(n, env)
	}
	return value.Null, fmt.Errorf("expr: cannot evaluate %T", e)
}

// EvalBool evaluates a predicate; NULL (unknown) counts as false, matching
// SQL WHERE semantics.
func EvalBool(e Expr, env Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	t, err := value.TruthOf(v)
	if err != nil {
		return false, fmt.Errorf("expr: predicate %s is not boolean: %w", e.SQL(), err)
	}
	return t == value.True, nil
}

func evalBinary(n *Binary, env Env) (value.Value, error) {
	switch n.Op {
	case OpAnd, OpOr:
		lv, err := Eval(n.L, env)
		if err != nil {
			return value.Null, err
		}
		lt, err := value.TruthOf(lv)
		if err != nil {
			return value.Null, err
		}
		// Short circuit when the left side decides.
		if n.Op == OpAnd && lt == value.False {
			return value.NewBool(false), nil
		}
		if n.Op == OpOr && lt == value.True {
			return value.NewBool(true), nil
		}
		rv, err := Eval(n.R, env)
		if err != nil {
			return value.Null, err
		}
		rt, err := value.TruthOf(rv)
		if err != nil {
			return value.Null, err
		}
		if n.Op == OpAnd {
			return lt.And(rt).Value(), nil
		}
		return lt.Or(rt).Value(), nil
	}
	l, err := Eval(n.L, env)
	if err != nil {
		return value.Null, err
	}
	r, err := Eval(n.R, env)
	if err != nil {
		return value.Null, err
	}
	switch n.Op {
	case OpAdd:
		return value.Add(l, r)
	case OpSub:
		return value.Sub(l, r)
	case OpMul:
		return value.Mul(l, r)
	case OpDiv:
		return value.Div(l, r)
	case OpMod:
		return value.Mod(l, r)
	case OpConcat:
		return value.Concat(l, r)
	case OpLike:
		if l.IsNull() || r.IsNull() {
			return value.Null, nil
		}
		if l.Kind() != value.KindString || r.Kind() != value.KindString {
			return value.Null, fmt.Errorf("expr: LIKE requires strings, got %s and %s", l.Kind(), r.Kind())
		}
		return value.NewBool(likeMatch(l.Str(), r.Str())), nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		t, err := compare(l, r, n.Op)
		if err != nil {
			return value.Null, err
		}
		return t.Value(), nil
	}
	return value.Null, fmt.Errorf("expr: unknown operator %q", n.Op)
}

func compare(l, r value.Value, op BinaryOp) (value.Truth, error) {
	if l.IsNull() || r.IsNull() {
		return value.Unknown, nil
	}
	c, err := value.Compare(l, r)
	if err != nil {
		return value.False, err
	}
	var ok bool
	switch op {
	case OpEq:
		ok = c == 0
	case OpNe:
		ok = c != 0
	case OpLt:
		ok = c < 0
	case OpLe:
		ok = c <= 0
	case OpGt:
		ok = c > 0
	case OpGe:
		ok = c >= 0
	}
	if ok {
		return value.True, nil
	}
	return value.False, nil
}

func evalIn(n *InList, env Env) (value.Value, error) {
	x, err := Eval(n.X, env)
	if err != nil {
		return value.Null, err
	}
	sawNull := x.IsNull()
	found := false
	for _, it := range n.Items {
		v, err := Eval(it, env)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() || x.IsNull() {
			sawNull = true
			continue
		}
		t, err := compare(x, v, OpEq)
		if err != nil {
			return value.Null, err
		}
		if t == value.True {
			found = true
			break
		}
	}
	var t value.Truth
	switch {
	case found:
		t = value.True
	case sawNull:
		t = value.Unknown
	default:
		t = value.False
	}
	if n.Negate {
		t = t.Not()
	}
	return t.Value(), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char),
// matched case-sensitively over bytes.
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match; patterns are short in practice.
	si, pi := 0, 0
	starS, starP := -1, -1
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
