package expr

import (
	"strings"

	"sheetmusiq/internal/value"
)

// Structural fingerprints for expression trees. The incremental evaluation
// pipeline (internal/core) keys cached stage snapshots by a fingerprint
// chained over the operator definitions a stage replays; predicates and
// formulas contribute through Fingerprint. The contract is the dual of
// value.Hash's: structurally identical trees (same node kinds, operators and
// literals, column names compared case-insensitively — the resolution rule
// the evaluator itself uses) produce the same fingerprint, and the
// fingerprint is deterministic for the life of the process, so it can be
// compared across Clone()d sheets and replayed sessions.
//
// The hash walks the tree in pre-order. Every node folds in a distinct type
// tag, so "(a) AND (b OR c)" and "(a AND b) OR (c)" cannot collide by node
// multiset alone; variadic nodes (IN lists, function calls) also fold in
// their arity, which disambiguates where their child lists end.

// Per-node-type fingerprint tags (arbitrary odd 64-bit constants).
const (
	fpSeed       uint64 = 0x9e3779b97f4a7c15
	fpTagLiteral uint64 = 0xbf58476d1ce4e5b9
	fpTagColumn  uint64 = 0x94d049bb133111eb
	fpTagStar    uint64 = 0xd6e8feb86659fd93
	fpTagBinary  uint64 = 0xa0761d6478bd642f
	fpTagUnary   uint64 = 0xe7037ed1a0b428db
	fpTagIsNull  uint64 = 0x8ebc6af09c88c6e3
	fpTagInList  uint64 = 0x589965cc75374cc3
	fpTagBetween uint64 = 0x1d8e4e27c47d124f
	fpTagFunc    uint64 = 0xeb44accab455d165
	fpTagSubq    uint64 = 0x2545f4914f6cdd1d
	fpTagWindow  uint64 = 0x7b9f2a4d1c8e6b35
)

// fpMix folds one 64-bit word into a running fingerprint, order-dependently.
func fpMix(h, x uint64) uint64 {
	h ^= x
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// fpString folds a string in case-insensitively (column names and operator
// spellings resolve case-insensitively throughout the algebra).
func fpString(h uint64, s string) uint64 {
	return fpMix(h, value.Hash(value.NewString(strings.ToLower(s))))
}

func fpBool(h uint64, b bool) uint64 {
	if b {
		return fpMix(h, 1)
	}
	return fpMix(h, 2)
}

// Fingerprint returns a deterministic 64-bit structural hash of e.
// Structurally equal trees fingerprint equally; differing operators,
// literals, column names (case-insensitively) or shapes fingerprint
// differently up to 64-bit collision odds.
func Fingerprint(e Expr) uint64 {
	h := fpSeed
	e.walk(func(n Expr) {
		switch n := n.(type) {
		case *Literal:
			h = fpMix(fpMix(h, fpTagLiteral), value.Hash(n.Val))
		case *ColumnRef:
			h = fpString(fpMix(h, fpTagColumn), n.Name)
		case *Star:
			h = fpMix(h, fpTagStar)
		case *Binary:
			h = fpString(fpMix(h, fpTagBinary), string(n.Op))
		case *Unary:
			h = fpString(fpMix(h, fpTagUnary), string(n.Op))
		case *IsNull:
			h = fpBool(fpMix(h, fpTagIsNull), n.Negate)
		case *InList:
			h = fpMix(fpBool(fpMix(h, fpTagInList), n.Negate), uint64(len(n.Items)))
		case *Between:
			h = fpBool(fpMix(h, fpTagBetween), n.Negate)
		case *FuncCall:
			h = fpMix(fpString(fpMix(h, fpTagFunc), n.Name), uint64(len(n.Args)))
		case *WindowCall:
			// Arities and per-key directions fold in at the node (they are
			// not children); the frame folds in by its SQL spelling.
			h = fpString(fpMix(h, fpTagWindow), string(n.Func))
			h = fpBool(h, n.Arg != nil)
			h = fpMix(h, uint64(len(n.PartitionBy)))
			h = fpMix(h, uint64(len(n.OrderBy)))
			for _, o := range n.OrderBy {
				h = fpBool(h, o.Desc)
			}
			if n.Frame != nil {
				h = fpString(h, n.Frame.String())
			}
		default:
			// Subquery forms: the stored SQL text is their whole identity
			// (the algebra rejects them before evaluation anyway).
			h = fpMix(h, fpTagSubq)
			h = fpMix(h, value.Hash(value.NewString(n.SQL())))
		}
	})
	return h
}

// Fingerprint returns the structural fingerprint of the program's source
// expression, computed once at compile time. Programs are compiled
// deterministically from their source, so equal fingerprints mean
// behaviourally identical programs over the same column resolution.
func (p *Program) Fingerprint() uint64 { return p.fp }

// FingerprintCombine chains an already-computed fingerprint (an upstream
// pipeline stage's, a definition hash) into h. Exposed so stage fingerprints
// can chain without re-deriving the mixing discipline.
func FingerprintCombine(h, x uint64) uint64 { return fpMix(h, x) }

// FingerprintString folds a case-insensitive string (a column name, an
// aggregate function name) into h.
func FingerprintString(h uint64, s string) uint64 { return fpString(h, s) }
