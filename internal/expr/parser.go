package expr

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sheetmusiq/internal/value"
)

// Parser consumes a token stream. The SQL engine drives the same Parser for
// statement structure and delegates expression positions to ParseExpr.
type Parser struct {
	toks []Token
	i    int
	// SubParser, when set, parses a nested SELECT at the current position
	// and returns the opaque statement plus its SQL text. The SQL layer
	// installs it; plain expression contexts (the spreadsheet algebra)
	// leave it nil, so nested queries are rejected there — matching the
	// paper's SheetMusiq, which "does not support nested queries".
	SubParser func(*Parser) (stmt any, text string, err error)
}

// NewParser wraps a token stream produced by Lex.
func NewParser(toks []Token) *Parser { return &Parser{toks: toks} }

// Peek returns the current token without consuming it.
func (p *Parser) Peek() Token { return p.toks[p.i] }

// Next consumes and returns the current token.
func (p *Parser) Next() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

// AcceptKeyword consumes the keyword if it is next and reports success.
func (p *Parser) AcceptKeyword(kw string) bool {
	if t := p.Peek(); t.Kind == TokKeyword && t.Text == kw {
		p.i++
		return true
	}
	return false
}

// AcceptOp consumes the operator if it is next and reports success.
func (p *Parser) AcceptOp(op string) bool {
	if t := p.Peek(); t.Kind == TokOp && t.Text == op {
		p.i++
		return true
	}
	return false
}

// ExpectKeyword consumes the keyword or errors.
func (p *Parser) ExpectKeyword(kw string) error {
	if !p.AcceptKeyword(kw) {
		t := p.Peek()
		return fmt.Errorf("expr: expected %s at %d, found %q", kw, t.Pos, t.Text)
	}
	return nil
}

// ExpectOp consumes the operator or errors.
func (p *Parser) ExpectOp(op string) error {
	if !p.AcceptOp(op) {
		t := p.Peek()
		return fmt.Errorf("expr: expected %q at %d, found %q", op, t.Pos, t.Text)
	}
	return nil
}

// AtEOF reports whether the stream is exhausted (semicolons are skipped).
func (p *Parser) AtEOF() bool {
	for p.Peek().Kind == TokOp && p.Peek().Text == ";" {
		p.i++
	}
	return p.Peek().Kind == TokEOF
}

// Parse parses a complete standalone expression; trailing tokens are an
// error.
func Parse(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if !p.AtEOF() {
		t := p.Peek()
		return nil, fmt.Errorf("expr: unexpected %q at %d", t.Text, t.Pos)
	}
	return e, nil
}

// MustParse parses or panics; for fixtures and tables of constants.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Operator precedence, loosest first.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
)

// ParseExpr parses one expression at the loosest precedence.
func (p *Parser) ParseExpr() (Expr, error) { return p.parseBinary(precOr) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	var left Expr
	var err error
	// NOT binds looser than comparisons but tighter than AND.
	if minPrec <= precNot && p.Peek().Kind == TokKeyword && p.Peek().Text == "NOT" {
		p.i++
		x, err := p.parseBinary(precNot)
		if err != nil {
			return nil, err
		}
		left = &Unary{Op: OpNot, X: x}
	} else {
		left, err = p.parseCmpOperand(minPrec)
		if err != nil {
			return nil, err
		}
	}
	for {
		t := p.Peek()
		switch {
		case t.Kind == TokKeyword && t.Text == "OR" && minPrec <= precOr:
			p.i++
			right, err := p.parseBinary(precAnd)
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpOr, L: left, R: right}
		case t.Kind == TokKeyword && t.Text == "AND" && minPrec <= precAnd:
			p.i++
			right, err := p.parseBinary(precNot)
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: OpAnd, L: left, R: right}
		default:
			return left, nil
		}
	}
}

// parseCmpOperand parses an additive expression optionally followed by one
// comparison, LIKE, IN, BETWEEN or IS NULL suffix.
func (p *Parser) parseCmpOperand(minPrec int) (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if minPrec > precCmp {
		return left, nil
	}
	t := p.Peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.i++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: BinaryOp(t.Text), L: left, R: right}, nil
		}
	}
	negate := false
	if t.Kind == TokKeyword && t.Text == "NOT" {
		// Lookahead for NOT LIKE / NOT IN / NOT BETWEEN.
		if n := p.toks[p.i+1]; n.Kind == TokKeyword &&
			(n.Text == "LIKE" || n.Text == "IN" || n.Text == "BETWEEN") {
			p.i++
			negate = true
			t = p.Peek()
		}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "LIKE":
			p.i++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			like := Expr(&Binary{Op: OpLike, L: left, R: right})
			if negate {
				like = &Unary{Op: OpNot, X: like}
			}
			return like, nil
		case "IN":
			p.i++
			if err := p.ExpectOp("("); err != nil {
				return nil, err
			}
			if t := p.Peek(); t.Kind == TokKeyword && t.Text == "SELECT" && p.SubParser != nil {
				stmt, text, err := p.SubParser(p)
				if err != nil {
					return nil, err
				}
				if err := p.ExpectOp(")"); err != nil {
					return nil, err
				}
				return &InSubquery{X: left, Sub: &Subquery{Stmt: stmt, Text: text}, Negate: negate}, nil
			}
			var items []Expr
			for {
				it, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				items = append(items, it)
				if p.AcceptOp(",") {
					continue
				}
				if err := p.ExpectOp(")"); err != nil {
					return nil, err
				}
				break
			}
			return &InList{X: left, Items: items, Negate: negate}, nil
		case "BETWEEN":
			p.i++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Between{X: left, Lo: lo, Hi: hi, Negate: negate}, nil
		case "IS":
			p.i++
			neg := p.AcceptKeyword("NOT")
			if err := p.ExpectKeyword("NULL"); err != nil {
				return nil, err
			}
			return &IsNull{X: left, Negate: neg}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.Peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-" && t.Text != "||") {
			return left, nil
		}
		p.i++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := BinaryOp(t.Text)
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.Peek()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		p.i++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: BinaryOp(t.Text), L: left, R: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.AcceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if l, ok := x.(*Literal); ok && l.Val.Kind().Numeric() {
			n, err := value.Neg(l.Val)
			if err == nil {
				return &Literal{Val: n}, nil
			}
		}
		return &Unary{Op: OpNeg, X: x}, nil
	}
	if p.AcceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.Peek()
	switch t.Kind {
	case TokNumber:
		p.i++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("expr: bad number %q at %d", t.Text, t.Pos)
			}
			return &Literal{Val: value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at %d", t.Text, t.Pos)
		}
		return &Literal{Val: value.NewInt(i)}, nil
	case TokString:
		p.i++
		return &Literal{Val: value.NewString(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.i++
			return &Literal{Val: value.Null}, nil
		case "TRUE":
			p.i++
			return &Literal{Val: value.NewBool(true)}, nil
		case "FALSE":
			p.i++
			return &Literal{Val: value.NewBool(false)}, nil
		case "DATE":
			p.i++
			s := p.Next()
			if s.Kind != TokString {
				return nil, fmt.Errorf("expr: DATE expects a 'YYYY-MM-DD' string at %d", s.Pos)
			}
			tm, err := time.Parse("2006-01-02", s.Text)
			if err != nil {
				return nil, fmt.Errorf("expr: bad date %q at %d", s.Text, s.Pos)
			}
			return &Literal{Val: value.NewDateDays(tm.Unix() / 86400)}, nil
		case "NOT":
			p.i++
			x, err := p.parseBinary(precNot)
			if err != nil {
				return nil, err
			}
			return &Unary{Op: OpNot, X: x}, nil
		case "EXISTS":
			p.i++
			if p.SubParser == nil {
				return nil, fmt.Errorf("expr: EXISTS is not supported in this context (at %d)", t.Pos)
			}
			if err := p.ExpectOp("("); err != nil {
				return nil, err
			}
			stmt, text, err := p.SubParser(p)
			if err != nil {
				return nil, err
			}
			if err := p.ExpectOp(")"); err != nil {
				return nil, err
			}
			return &Exists{Sub: &Subquery{Stmt: stmt, Text: text}}, nil
		}
		return nil, fmt.Errorf("expr: unexpected keyword %s at %d", t.Text, t.Pos)
	case TokIdent:
		p.i++
		if p.Peek().Kind == TokOp && p.Peek().Text == "(" {
			p.i++
			name := strings.ToUpper(t.Text)
			var args []Expr
			if p.AcceptOp(")") {
				fc := &FuncCall{Name: name}
				if p.acceptWord("OVER") {
					return p.parseOverClause(fc)
				}
				return fc, nil
			}
			// DISTINCT inside aggregate calls: COUNT(DISTINCT x).
			distinct := p.AcceptKeyword("DISTINCT")
			for {
				if p.Peek().Kind == TokOp && p.Peek().Text == "*" {
					p.i++
					args = append(args, &Star{})
				} else {
					a, err := p.ParseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
				}
				if p.AcceptOp(",") {
					continue
				}
				if err := p.ExpectOp(")"); err != nil {
					return nil, err
				}
				break
			}
			if distinct {
				name += "_DISTINCT"
			}
			fc := &FuncCall{Name: name, Args: args}
			if p.acceptWord("OVER") {
				return p.parseOverClause(fc)
			}
			return fc, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	case TokOp:
		if t.Text == "(" {
			p.i++
			if n := p.Peek(); n.Kind == TokKeyword && n.Text == "SELECT" && p.SubParser != nil {
				stmt, text, err := p.SubParser(p)
				if err != nil {
					return nil, err
				}
				if err := p.ExpectOp(")"); err != nil {
					return nil, err
				}
				return &Subquery{Stmt: stmt, Text: text}, nil
			}
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			p.i++
			return &Star{}, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected %q at %d", t.Text, t.Pos)
}
