package expr

import (
	"errors"
	"fmt"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/value"
)

// This file implements expression compilation: turning a parsed tree into a
// Program whose column references are resolved to row positions exactly
// once. Evaluation then indexes straight into a positional row instead of
// performing a name lookup per reference per row, which is what makes the
// replay loop of core.Evaluate (and the SQL executor's WHERE/HAVING paths)
// scale to large working tables.

// Resolver maps a column name to its index in the row layout a Program will
// be evaluated against. It is consulted only at compile time.
type Resolver func(name string) (int, bool)

// ErrNotCompilable marks expressions the compiler declines: anything
// nesting a subquery, whose evaluation needs the Env's SubqueryEvaluator
// capability and a per-statement cache. Callers fall back to the
// tree-walking Eval.
var ErrNotCompilable = errors.New("expr: expression is not compilable")

// progFn evaluates one compiled node against a positional row. Programs
// hold no mutable state, so one Program may be evaluated from many
// goroutines concurrently.
type progFn func(row []value.Value) (value.Value, error)

// Program is a compiled expression bound to a fixed row layout. The
// structural fingerprint and the referenced-column set are computed once at
// compile time: Programs are shared across goroutines and both values are
// consulted on every pipeline build, so caching them beside the code avoids
// a tree walk per consultation without introducing mutable state.
type Program struct {
	src  Expr
	fn   progFn
	fp   uint64
	deps []string
}

// Compile resolves every column reference of e through resolve and returns
// a Program evaluated directly against a positional row. Names that do not
// resolve compile into a node that reproduces Eval's unknown-column error
// at evaluation time (so an unused dangling reference over zero rows stays
// silent, exactly as in the interpreted path). Subqueries are refused with
// ErrNotCompilable.
func Compile(e Expr, resolve Resolver) (*Program, error) {
	fn, err := compile(e, resolve)
	if err != nil {
		if errors.Is(err, ErrNotCompilable) {
			compileDeclined.Inc()
		}
		return nil, err
	}
	compileOK.Inc()
	return &Program{src: e, fn: fn, fp: Fingerprint(e), deps: Deps(e)}, nil
}

// Compile outcome counters: compileDeclined counts ErrNotCompilable
// declines (subqueries falling back to the tree-walking interpreter), the
// fast-path miss the metrics endpoint surfaces as expr.compile.declined.
var (
	compileOK       = obs.Default.Counter("expr.compile.ok")
	compileDeclined = obs.Default.Counter("expr.compile.declined")
)

// Source returns the expression the program was compiled from.
func (p *Program) Source() Expr { return p.src }

// Eval evaluates the program against a positional row, with the same SQL
// three-valued NULL semantics as Eval.
func (p *Program) Eval(row []value.Value) (value.Value, error) {
	return p.fn(row)
}

// EvalBool evaluates the program as a predicate; NULL (unknown) counts as
// false, matching SQL WHERE semantics and EvalBool.
func (p *Program) EvalBool(row []value.Value) (bool, error) {
	v, err := p.fn(row)
	if err != nil {
		return false, err
	}
	t, err := value.TruthOf(v)
	if err != nil {
		return false, fmt.Errorf("expr: predicate %s is not boolean: %w", p.src.SQL(), err)
	}
	return t == value.True, nil
}

func compile(e Expr, resolve Resolver) (progFn, error) {
	switch n := e.(type) {
	case *Literal:
		v := n.Val
		return func([]value.Value) (value.Value, error) { return v, nil }, nil
	case *ColumnRef:
		i, ok := resolve(n.Name)
		if !ok {
			name := n.Name
			return func([]value.Value) (value.Value, error) {
				return value.Null, fmt.Errorf("expr: unknown column %q", name)
			}, nil
		}
		return func(row []value.Value) (value.Value, error) { return row[i], nil }, nil
	case *Star:
		return func([]value.Value) (value.Value, error) {
			return value.Null, fmt.Errorf("expr: * is only valid inside COUNT(*)")
		}, nil
	case *Unary:
		x, err := compile(n.X, resolve)
		if err != nil {
			return nil, err
		}
		if n.Op == OpNeg {
			return func(row []value.Value) (value.Value, error) {
				v, err := x(row)
				if err != nil {
					return value.Null, err
				}
				return value.Neg(v)
			}, nil
		}
		return func(row []value.Value) (value.Value, error) {
			v, err := x(row)
			if err != nil {
				return value.Null, err
			}
			t, err := value.TruthOf(v)
			if err != nil {
				return value.Null, err
			}
			return t.Not().Value(), nil
		}, nil
	case *Binary:
		return compileBinary(n, resolve)
	case *IsNull:
		x, err := compile(n.X, resolve)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(row []value.Value) (value.Value, error) {
			v, err := x(row)
			if err != nil {
				return value.Null, err
			}
			res := v.IsNull()
			if negate {
				res = !res
			}
			return value.NewBool(res), nil
		}, nil
	case *InList:
		return compileIn(n, resolve)
	case *Between:
		x, err := compile(n.X, resolve)
		if err != nil {
			return nil, err
		}
		lo, err := compile(n.Lo, resolve)
		if err != nil {
			return nil, err
		}
		hi, err := compile(n.Hi, resolve)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(row []value.Value) (value.Value, error) {
			xv, err := x(row)
			if err != nil {
				return value.Null, err
			}
			lov, err := lo(row)
			if err != nil {
				return value.Null, err
			}
			hiv, err := hi(row)
			if err != nil {
				return value.Null, err
			}
			ge, err := compare(xv, lov, OpGe)
			if err != nil {
				return value.Null, err
			}
			le, err := compare(xv, hiv, OpLe)
			if err != nil {
				return value.Null, err
			}
			t := ge.And(le)
			if negate {
				t = t.Not()
			}
			return t.Value(), nil
		}, nil
	case *FuncCall:
		return compileFunc(n, resolve)
	case *WindowCall:
		fn := n.Func
		return func([]value.Value) (value.Value, error) {
			return value.Null, fmt.Errorf("expr: window function %s not allowed in a row context", fn)
		}, nil
	case *Subquery, *Exists, *InSubquery:
		return nil, ErrNotCompilable
	}
	return nil, fmt.Errorf("expr: cannot compile %T", e)
}

func compileBinary(n *Binary, resolve Resolver) (progFn, error) {
	l, err := compile(n.L, resolve)
	if err != nil {
		return nil, err
	}
	r, err := compile(n.R, resolve)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpAnd, OpOr:
		isAnd := n.Op == OpAnd
		return func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			lt, err := value.TruthOf(lv)
			if err != nil {
				return value.Null, err
			}
			// Short circuit when the left side decides.
			if isAnd && lt == value.False {
				return value.NewBool(false), nil
			}
			if !isAnd && lt == value.True {
				return value.NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			rt, err := value.TruthOf(rv)
			if err != nil {
				return value.Null, err
			}
			if isAnd {
				return lt.And(rt).Value(), nil
			}
			return lt.Or(rt).Value(), nil
		}, nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpConcat:
		var arith func(a, b value.Value) (value.Value, error)
		switch n.Op {
		case OpAdd:
			arith = value.Add
		case OpSub:
			arith = value.Sub
		case OpMul:
			arith = value.Mul
		case OpDiv:
			arith = value.Div
		case OpMod:
			arith = value.Mod
		case OpConcat:
			arith = value.Concat
		}
		return func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			return arith(lv, rv)
		}, nil
	case OpLike:
		return func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil
			}
			if lv.Kind() != value.KindString || rv.Kind() != value.KindString {
				return value.Null, fmt.Errorf("expr: LIKE requires strings, got %s and %s", lv.Kind(), rv.Kind())
			}
			return value.NewBool(likeMatch(lv.Str(), rv.Str())), nil
		}, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		op := n.Op
		return func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			t, err := compare(lv, rv, op)
			if err != nil {
				return value.Null, err
			}
			return t.Value(), nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unknown operator %q", n.Op)
}

func compileIn(n *InList, resolve Resolver) (progFn, error) {
	x, err := compile(n.X, resolve)
	if err != nil {
		return nil, err
	}
	items := make([]progFn, len(n.Items))
	for i, it := range n.Items {
		items[i], err = compile(it, resolve)
		if err != nil {
			return nil, err
		}
	}
	negate := n.Negate
	return func(row []value.Value) (value.Value, error) {
		xv, err := x(row)
		if err != nil {
			return value.Null, err
		}
		sawNull := xv.IsNull()
		found := false
		for _, it := range items {
			v, err := it(row)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() || xv.IsNull() {
				sawNull = true
				continue
			}
			t, err := compare(xv, v, OpEq)
			if err != nil {
				return value.Null, err
			}
			if t == value.True {
				found = true
				break
			}
		}
		var t value.Truth
		switch {
		case found:
			t = value.True
		case sawNull:
			t = value.Unknown
		default:
			t = value.False
		}
		if negate {
			t = t.Not()
		}
		return t.Value(), nil
	}, nil
}

func compileFunc(n *FuncCall, resolve Resolver) (progFn, error) {
	if AggregateNames[n.Name] {
		name := n.Name
		return func([]value.Value) (value.Value, error) {
			return value.Null, fmt.Errorf("expr: aggregate %s not allowed in a row context", name)
		}, nil
	}
	args := make([]progFn, len(n.Args))
	var err error
	for i, a := range n.Args {
		args[i], err = compile(a, resolve)
		if err != nil {
			return nil, err
		}
	}
	name := n.Name
	return func(row []value.Value) (value.Value, error) {
		vals := make([]value.Value, len(args))
		for i, a := range args {
			v, err := a(row)
			if err != nil {
				return value.Null, err
			}
			vals[i] = v
		}
		return CallScalar(name, vals)
	}, nil
}
