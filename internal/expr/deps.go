package expr

import (
	"sort"
	"strings"
)

// Dependency extraction for expression trees. The incremental pipeline
// (internal/core) keys cached stage artifacts by a fingerprint derived from
// exactly the inputs a stage reads; Deps names those inputs so the stage
// dependency graph — and the graph-exact invalidation built on it — can be
// assembled without re-walking trees per evaluation.

// Deps returns the canonical referenced-column set of e: lower-cased,
// deduplicated and sorted. Columns resolve case-insensitively throughout the
// algebra, so the lower-cased spelling is the dependency identity; sorting
// makes the set stable under structurally equivalent rewrites of e, which is
// what lets dependency edges be compared across Clone()d sheets.
func Deps(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	e.walk(func(n Expr) {
		if c, ok := n.(*ColumnRef); ok {
			k := strings.ToLower(c.Name)
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	})
	sort.Strings(out)
	return out
}

// Deps returns the program's referenced-column set, computed once at compile
// time (beside the cached Fingerprint) — Programs are evaluated from many
// goroutines, so both are derived eagerly rather than memoised lazily.
func (p *Program) Deps() []string {
	return append([]string(nil), p.deps...)
}
