package expr

import (
	"fmt"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// This file adds nested-subquery nodes to the expression language: scalar
// subqueries, EXISTS, and IN (SELECT ...). The spreadsheet algebra
// deliberately rejects them (the paper's SheetMusiq "does not support
// nested queries and queries with keyword exist"), but the SQL substrate
// supports them so the repository can run the TPC-H queries the study had
// to exclude and demonstrate exactly where the algebra's expressiveness
// boundary lies.
//
// The expression layer stays ignorant of SQL statement structure: a
// Subquery holds an opaque statement owned by the SQL layer, parsing
// delegates through Parser.SubParser, and evaluation delegates through the
// SubqueryEvaluator capability on the Env.

// Subquery wraps a nested SELECT owned by the SQL layer.
type Subquery struct {
	// Stmt is the parsed statement (a *sql.SelectStmt); opaque here.
	Stmt any
	// Text is the statement's SQL rendering, used by SQL().
	Text string
}

// SQL implements Expr.
func (s *Subquery) SQL() string { return "(" + s.Text + ")" }

func (s *Subquery) walk(fn func(Expr)) { fn(s) }

// Exists is the EXISTS (SELECT ...) predicate.
type Exists struct {
	Sub    *Subquery
	Negate bool
}

// SQL implements Expr.
func (e *Exists) SQL() string {
	if e.Negate {
		return "(NOT EXISTS " + e.Sub.SQL() + ")"
	}
	return "(EXISTS " + e.Sub.SQL() + ")"
}

func (e *Exists) walk(fn func(Expr)) { fn(e); e.Sub.walk(fn) }

// InSubquery is X [NOT] IN (SELECT ...).
type InSubquery struct {
	X      Expr
	Sub    *Subquery
	Negate bool
}

// SQL implements Expr.
func (n *InSubquery) SQL() string {
	op := " IN "
	if n.Negate {
		op = " NOT IN "
	}
	return "(" + n.X.SQL() + op + n.Sub.SQL() + ")"
}

func (n *InSubquery) walk(fn func(Expr)) { fn(n); n.X.walk(fn); n.Sub.walk(fn) }

// SubqueryEvaluator is the optional Env capability that executes a nested
// statement in the current row's scope (enabling correlated subqueries)
// and returns its result relation.
type SubqueryEvaluator interface {
	EvalSubquery(sub *Subquery) (*relation.Relation, error)
}

// evalSubqueryRelation runs the subquery through the Env's capability.
func evalSubqueryRelation(sub *Subquery, env Env) (*relation.Relation, error) {
	se, ok := env.(SubqueryEvaluator)
	if !ok {
		return nil, fmt.Errorf("expr: subqueries are not supported in this context")
	}
	return se.EvalSubquery(sub)
}

// evalScalarSubquery enforces scalar semantics: one column, at most one
// row; an empty result is NULL.
func evalScalarSubquery(sub *Subquery, env Env) (value.Value, error) {
	rel, err := evalSubqueryRelation(sub, env)
	if err != nil {
		return value.Null, err
	}
	if len(rel.Schema) != 1 {
		return value.Null, fmt.Errorf("expr: scalar subquery returns %d columns", len(rel.Schema))
	}
	switch rel.Len() {
	case 0:
		return value.Null, nil
	case 1:
		return rel.Rows[0][0], nil
	default:
		return value.Null, fmt.Errorf("expr: scalar subquery returned %d rows", rel.Len())
	}
}

// evalExists implements EXISTS.
func evalExists(e *Exists, env Env) (value.Value, error) {
	rel, err := evalSubqueryRelation(e.Sub, env)
	if err != nil {
		return value.Null, err
	}
	res := rel.Len() > 0
	if e.Negate {
		res = !res
	}
	return value.NewBool(res), nil
}

// evalInSubquery implements X [NOT] IN (SELECT ...) with SQL three-valued
// membership over the subquery's single output column.
func evalInSubquery(n *InSubquery, env Env) (value.Value, error) {
	x, err := Eval(n.X, env)
	if err != nil {
		return value.Null, err
	}
	rel, err := evalSubqueryRelation(n.Sub, env)
	if err != nil {
		return value.Null, err
	}
	if len(rel.Schema) != 1 {
		return value.Null, fmt.Errorf("expr: IN subquery returns %d columns", len(rel.Schema))
	}
	sawNull := x.IsNull()
	found := false
	for _, row := range rel.Rows {
		v := row[0]
		if v.IsNull() || x.IsNull() {
			sawNull = true
			continue
		}
		tr, err := compare(x, v, OpEq)
		if err != nil {
			return value.Null, err
		}
		if tr == value.True {
			found = true
			break
		}
	}
	var tr value.Truth
	switch {
	case found:
		tr = value.True
	case sawNull:
		tr = value.Unknown
	default:
		tr = value.False
	}
	if n.Negate {
		tr = tr.Not()
	}
	return tr.Value(), nil
}

// ContainsSubquery reports whether e nests any subquery.
func ContainsSubquery(e Expr) bool {
	found := false
	e.walk(func(n Expr) {
		if _, ok := n.(*Subquery); ok {
			found = true
		}
	})
	return found
}
