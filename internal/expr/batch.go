package expr

import (
	"errors"
	"math"
	"math/bits"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Vectorized expression backend. CompileBatch turns an expression tree into
// a program that evaluates a whole chunk of rows per call against typed
// column vectors (relation.Col), instead of one boxed row at a time:
// selections produce a surviving-index vector directly (SelectInto) and
// formulas write a value vector (EvalInto), with comparison and arithmetic
// running as tight loops over int64/float64/string payload arrays.
//
// The contract is bit-identity with the per-row Program: every value, NULL
// and error outcome matches the row-at-a-time path exactly. Errors are
// tracked as a per-lane bitmap — a lane's bit is set iff evaluating that row
// through the row path would return an error, including the short-circuit
// suppression rules (AND/OR skip the right side's errors on deciding lanes;
// IN stops at the first match). When any lane of a window errs, the batch
// entry points report failure and the caller re-runs the chunk through the
// row program, which reproduces the exact first error in row order.
//
// Expressions outside the vectorizer's coverage — LIKE, string
// concatenation, scalar function calls, subqueries, unresolvable columns —
// decline with ErrNotVectorizable and fall back to the row path, counted by
// the expr.batch.ok/declined pair.

// BatchResolver maps a column name to the typed column vector a batch
// program reads it from. It is consulted only at compile time.
type BatchResolver func(name string) (*relation.Col, bool)

// ErrNotVectorizable marks expressions the batch compiler declines; callers
// fall back to the per-row Program.
var ErrNotVectorizable = errors.New("expr: expression is not vectorizable")

// Batch compile outcome counters, mirroring expr.compile.ok/declined.
var (
	batchOK       = obs.Default.Counter("expr.batch.ok")
	batchDeclined = obs.Default.Counter("expr.batch.declined")
)

// batchEnabled gates the vectorized backend; tests disable it to force the
// row path. Toggled only between evaluations, never concurrently with them.
var batchEnabled = true

// SetBatchEnabled turns the vectorized backend on or off (tests force the
// row path with it) and returns the previous setting.
func SetBatchEnabled(on bool) bool {
	prev := batchEnabled
	batchEnabled = on
	return prev
}

// kindDynamic marks a lane vector carrying boxed values of per-lane kind —
// the escape hatch for Boxed columns and operators with value-dependent
// result kinds (integer division).
const kindDynamic value.Kind = 0xFF

// bctx addresses one evaluation window: lanes k in [0,n) map to cell index
// rows[lo+k] of the base columns, or lo+k when rows is nil.
type bctx struct {
	rows []int32
	lo   int
	n    int
}

// bvec is one operand or result vector over a window's lanes. kind selects
// the payload family (KindNull = every lane NULL, kindDynamic = boxed vals);
// scalar marks a one-slot payload broadcast to every lane. nulls and errs
// are lane-indexed bitmaps; payload slots of NULL or erring lanes hold
// zero values and are never trusted.
type bvec struct {
	kind   value.Kind
	scalar bool
	ints   []int64
	floats []float64
	strs   []string
	vals   []value.Value
	nulls  []uint64
	errs   []uint64
}

// pi maps a lane to its payload slot (0 for scalars).
func (v *bvec) pi(k int) int {
	if v.scalar {
		return 0
	}
	return k
}

// null reports whether lane k is NULL.
func (v *bvec) null(k int) bool {
	switch v.kind {
	case value.KindNull:
		return true
	case kindDynamic:
		return v.vals[v.pi(k)].IsNull()
	}
	return relation.BitGet(v.nulls, k)
}

// lane boxes lane k back into a value.
func (v *bvec) lane(k int) value.Value {
	switch v.kind {
	case value.KindNull:
		return value.Null
	case kindDynamic:
		return v.vals[v.pi(k)]
	}
	if relation.BitGet(v.nulls, k) {
		return value.Null
	}
	p := v.pi(k)
	switch v.kind {
	case value.KindInt:
		return value.NewInt(v.ints[p])
	case value.KindFloat:
		return value.NewFloat(v.floats[p])
	case value.KindString:
		return value.NewString(v.strs[p])
	case value.KindBool:
		return value.NewBool(v.ints[p] != 0)
	case value.KindDate:
		return value.NewDateDays(v.ints[p])
	}
	return value.Null
}

// anyBit reports whether any bit of the bitmap is set.
func anyBit(bm []uint64) bool {
	for _, w := range bm {
		if w != 0 {
			return true
		}
	}
	return false
}

// unionBits ORs the given lane bitmaps into a freshly allocated one (nil
// when every part is nil). The result is safe to mutate; the parts are not
// touched.
func unionBits(n int, parts ...[]uint64) []uint64 {
	var out []uint64
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = make([]uint64, (n+63)/64)
		}
		for i := range p {
			out[i] |= p[i]
		}
	}
	return out
}

// setBit sets lane k, allocating the bitmap on first use. Only bitmaps owned
// by the caller (freshly built or from unionBits) may be passed.
func setBit(bm []uint64, n, k int) []uint64 {
	if bm == nil {
		bm = make([]uint64, (n+63)/64)
	}
	relation.BitSet(bm, k)
	return bm
}

// stride returns the lane-to-payload step: 0 for scalars, 1 otherwise.
func (v *bvec) stride() int {
	if v.scalar {
		return 0
	}
	return 1
}

// windowIdx returns idx, or nil when idx maps window [lo,hi) to itself —
// the zero-copy identity case where column payloads alias instead of
// gathering. The scan is cheap next to any gather it saves.
func windowIdx(idx []int32, lo, hi int) []int32 {
	if idx == nil {
		return nil
	}
	for k := lo; k < hi; k++ {
		if int(idx[k]) != k {
			return idx
		}
	}
	return nil
}

// batchFn evaluates one compiled node over a window.
type batchFn func(c *bctx) *bvec

// batchPredFn evaluates one compiled predicate node straight to truth lanes.
// Predicate-shaped nodes (comparisons, AND/OR/NOT, IN, BETWEEN, IS NULL)
// compile natively to this form so a selection tree never round-trips
// through boolean value vectors between nodes.
type batchPredFn func(c *bctx) *truthVec

// BatchProgram is a compiled vectorized expression. It holds no mutable
// state; one program may evaluate windows from many goroutines.
type BatchProgram struct {
	src  Expr
	fn   batchFn
	pred batchPredFn
}

// CompileBatch compiles e against typed columns, declining (with the
// expr.batch.declined counter) anything outside the vectorizer's coverage.
func CompileBatch(e Expr, resolve BatchResolver) (*BatchProgram, error) {
	if !batchEnabled {
		batchDeclined.Inc()
		return nil, ErrNotVectorizable
	}
	fn, err := compileBatch(e, resolve)
	if err != nil {
		batchDeclined.Inc()
		return nil, err
	}
	pred, err := compileBatchPred(e, resolve)
	if err != nil {
		batchDeclined.Inc()
		return nil, err
	}
	batchOK.Inc()
	return &BatchProgram{src: e, fn: fn, pred: pred}, nil
}

// Source returns the expression the program was compiled from.
func (p *BatchProgram) Source() Expr { return p.src }

// SelectInto evaluates the program as a predicate over window [lo,hi) of
// idx (nil = identity) and appends the surviving base-row indexes to
// dst[0:], returning the count. ok is false when any lane of the window
// would error on the row path — the caller re-runs the chunk through the
// row program to reproduce the exact error — or, trivially, never here:
// compile-time declines surface from CompileBatch.
func (p *BatchProgram) SelectInto(idx []int32, lo, hi int, dst []int32) (int, bool) {
	idx = windowIdx(idx, lo, hi)
	c := &bctx{rows: idx, lo: lo, n: hi - lo}
	tv := p.pred(c)
	if anyBit(tv.errs) {
		return 0, false
	}
	w := 0
	if idx == nil {
		for k := 0; k < c.n; k++ {
			if tv.t[k] == truthT {
				dst[w] = int32(lo + k)
				w++
			}
		}
	} else {
		for k := 0; k < c.n; k++ {
			if tv.t[k] == truthT {
				dst[w] = idx[lo+k]
				w++
			}
		}
	}
	return w, true
}

// EvalInto evaluates the program over window [lo,hi) of idx (nil =
// identity), writing each lane's value to out at its base-row index, widened
// to kind under the consumer's coercion rule (KindFloat widens integer
// results; any other kind leaves values untouched). ok is false when any
// lane would error on the row path.
func (p *BatchProgram) EvalInto(idx []int32, lo, hi int, kind value.Kind, out []value.Value) bool {
	idx = windowIdx(idx, lo, hi)
	c := &bctx{rows: idx, lo: lo, n: hi - lo}
	v := p.fn(c)
	if anyBit(v.errs) {
		return false
	}
	widen := kind == value.KindFloat
	for k := 0; k < c.n; k++ {
		ri := lo + k
		if idx != nil {
			ri = int(idx[lo+k])
		}
		val := v.lane(k)
		if widen && val.Kind() == value.KindInt {
			val = value.NewFloat(float64(val.Int()))
		}
		out[ri] = val
	}
	return true
}

// EvalIntoCol evaluates the program over window [lo,hi) of idx (nil =
// identity), writing each lane's raw payload to out's lane array at the
// lane's base-row index and marking the cell in filled — no value is boxed.
// out.Kind is the expected result kind (the consumer's inferred column
// kind) and its matching payload array must cover the base rows; integer
// lanes widen to a float column exactly as EvalInto's coercion does. NULL
// lanes leave filled clear. ok is false when any lane would error on the
// row path, or when a non-NULL lane's widened kind disagrees with out.Kind
// — callers then redo the fill through the boxed path, which reproduces
// the exact error or the dynamically typed column.
func (p *BatchProgram) EvalIntoCol(idx []int32, lo, hi int, out *relation.Col, filled []uint8) bool {
	idx = windowIdx(idx, lo, hi)
	c := &bctx{rows: idx, lo: lo, n: hi - lo}
	v := p.fn(c)
	if anyBit(v.errs) {
		return false
	}
	ri := func(k int) int {
		if idx != nil {
			return int(idx[lo+k])
		}
		return lo + k
	}
	kind := out.Kind
	if v.kind == value.KindNull {
		return true
	}
	if v.kind == kindDynamic {
		for k := 0; k < c.n; k++ {
			val := v.vals[v.pi(k)]
			if val.IsNull() {
				continue
			}
			vk := val.Kind()
			i := ri(k)
			if kind == value.KindFloat && vk == value.KindInt {
				out.Floats[i] = float64(val.Int())
				filled[i] = 1
				continue
			}
			if vk != kind {
				return false
			}
			switch kind {
			case value.KindInt:
				out.Ints[i] = val.Int()
			case value.KindFloat:
				out.Floats[i] = val.Float()
			case value.KindString:
				out.Strs[i] = val.Str()
			case value.KindBool:
				if val.Bool() {
					out.Ints[i] = 1
				} else {
					out.Ints[i] = 0
				}
			case value.KindDate:
				out.Ints[i] = val.DateDays()
			default:
				return false
			}
			filled[i] = 1
		}
		return true
	}
	if kind == value.KindFloat && v.kind == value.KindInt {
		for k := 0; k < c.n; k++ {
			if v.null(k) {
				continue
			}
			i := ri(k)
			out.Floats[i] = float64(v.ints[v.pi(k)])
			filled[i] = 1
		}
		return true
	}
	if v.kind != kind {
		return false
	}
	switch kind {
	case value.KindFloat:
		for k := 0; k < c.n; k++ {
			if v.null(k) {
				continue
			}
			i := ri(k)
			out.Floats[i] = v.floats[v.pi(k)]
			filled[i] = 1
		}
	case value.KindString:
		for k := 0; k < c.n; k++ {
			if v.null(k) {
				continue
			}
			i := ri(k)
			out.Strs[i] = v.strs[v.pi(k)]
			filled[i] = 1
		}
	default: // Int, Bool and Date share the ints lane, exactly like Col
		for k := 0; k < c.n; k++ {
			if v.null(k) {
				continue
			}
			i := ri(k)
			out.Ints[i] = v.ints[v.pi(k)]
			filled[i] = 1
		}
	}
	return true
}

// EvalPos evaluates the program over window [lo,hi) of idx (nil =
// identity), writing lane k's value to out[lo+k] — positional output for
// consumers whose output rows follow window order rather than base-row
// indexing. Widening and the failure contract match EvalInto.
func (p *BatchProgram) EvalPos(idx []int32, lo, hi int, kind value.Kind, out []value.Value) bool {
	c := &bctx{rows: windowIdx(idx, lo, hi), lo: lo, n: hi - lo}
	v := p.fn(c)
	if anyBit(v.errs) {
		return false
	}
	widen := kind == value.KindFloat
	for k := 0; k < c.n; k++ {
		val := v.lane(k)
		if widen && val.Kind() == value.KindInt {
			val = value.NewFloat(float64(val.Int()))
		}
		out[lo+k] = val
	}
	return true
}

func compileBatch(e Expr, resolve BatchResolver) (batchFn, error) {
	switch n := e.(type) {
	case *Literal:
		vec := scalarVec(n.Val)
		return func(*bctx) *bvec { return vec }, nil
	case *ColumnRef:
		col, ok := resolve(n.Name)
		if !ok {
			// The row path errors per row on unknown columns; declining keeps
			// that (and the zero-row silence) exact.
			return nil, ErrNotVectorizable
		}
		return func(c *bctx) *bvec { return gatherCol(col, c) }, nil
	case *Unary:
		if n.Op == OpNeg {
			x, err := compileBatch(n.X, resolve)
			if err != nil {
				return nil, err
			}
			return func(c *bctx) *bvec { return negVec(x(c), c.n) }, nil
		}
		return predAsValue(n, resolve)
	case *Binary:
		return compileBatchBinary(n, resolve)
	case *IsNull, *InList, *Between:
		return predAsValue(e, resolve)
	case *FuncCall, *WindowCall, *Star, *Subquery, *Exists, *InSubquery:
		return nil, ErrNotVectorizable
	}
	return nil, ErrNotVectorizable
}

// predAsValue compiles a predicate-shaped node used in value position: the
// native truth-lane form plus one conversion to a boolean value vector.
func predAsValue(e Expr, resolve BatchResolver) (batchFn, error) {
	p, err := compileBatchPred(e, resolve)
	if err != nil {
		return nil, err
	}
	return func(c *bctx) *bvec { return fromTruth(p(c), c.n) }, nil
}

func compileBatchBinary(n *Binary, resolve BatchResolver) (batchFn, error) {
	switch n.Op {
	case OpLike, OpConcat:
		return nil, ErrNotVectorizable
	case OpAnd, OpOr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return predAsValue(n, resolve)
	}
	l, err := compileBatch(n.L, resolve)
	if err != nil {
		return nil, err
	}
	r, err := compileBatch(n.R, resolve)
	if err != nil {
		return nil, err
	}
	op := n.Op
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return func(c *bctx) *bvec { return arithVec(l(c), r(c), op, c.n) }, nil
	}
	return nil, ErrNotVectorizable
}

// compileBatchPred compiles a predicate to native truth lanes. Non-predicate
// nodes compile as values and convert with toTruth, exactly as the row
// path's TruthOf does.
func compileBatchPred(e Expr, resolve BatchResolver) (batchPredFn, error) {
	switch n := e.(type) {
	case *Unary:
		if n.Op == OpNot {
			x, err := compileBatchPred(n.X, resolve)
			if err != nil {
				return nil, err
			}
			return func(c *bctx) *truthVec {
				tv := x(c)
				out := &truthVec{t: make([]uint8, c.n), errs: tv.errs}
				for k, t := range tv.t {
					out.t[k] = truthNot(t)
				}
				return out
			}, nil
		}
	case *Binary:
		switch n.Op {
		case OpAnd, OpOr:
			l, err := compileBatchPred(n.L, resolve)
			if err != nil {
				return nil, err
			}
			r, err := compileBatchPred(n.R, resolve)
			if err != nil {
				return nil, err
			}
			isAnd := n.Op == OpAnd
			return func(c *bctx) *truthVec { return andOrTruth(l(c), r(c), isAnd, c.n) }, nil
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			l, err := compileBatch(n.L, resolve)
			if err != nil {
				return nil, err
			}
			r, err := compileBatch(n.R, resolve)
			if err != nil {
				return nil, err
			}
			op := n.Op
			return func(c *bctx) *truthVec { return cmpTruth(l(c), r(c), op, c.n) }, nil
		}
	case *IsNull:
		x, err := compileBatch(n.X, resolve)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(c *bctx) *truthVec {
			xv := x(c)
			out := &truthVec{t: make([]uint8, c.n), errs: xv.errs}
			for k := 0; k < c.n; k++ {
				if xv.null(k) != negate {
					out.t[k] = truthT
				}
			}
			return out
		}, nil
	case *InList:
		return compileBatchIn(n, resolve)
	case *Between:
		x, err := compileBatch(n.X, resolve)
		if err != nil {
			return nil, err
		}
		lo, err := compileBatch(n.Lo, resolve)
		if err != nil {
			return nil, err
		}
		hi, err := compileBatch(n.Hi, resolve)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(c *bctx) *truthVec {
			xv := x(c)
			// The row path computes both bounds before combining (no short
			// circuit), so both compares' errors count unconditionally.
			ge := cmpTruth(xv, lo(c), OpGe, c.n)
			le := cmpTruth(xv, hi(c), OpLe, c.n)
			out := &truthVec{t: make([]uint8, c.n), errs: unionBits(c.n, ge.errs, le.errs)}
			for k := 0; k < c.n; k++ {
				t := truthAnd(ge.t[k], le.t[k])
				if negate {
					t = truthNot(t)
				}
				out.t[k] = t
			}
			return out
		}, nil
	}
	fn, err := compileBatch(e, resolve)
	if err != nil {
		return nil, err
	}
	return func(c *bctx) *truthVec { return toTruth(fn(c), c.n) }, nil
}

func compileBatchIn(n *InList, resolve BatchResolver) (batchPredFn, error) {
	x, err := compileBatch(n.X, resolve)
	if err != nil {
		return nil, err
	}
	items := make([]batchFn, len(n.Items))
	for i, it := range n.Items {
		items[i], err = compileBatch(it, resolve)
		if err != nil {
			return nil, err
		}
	}
	negate := n.Negate
	return func(c *bctx) *truthVec {
		nn := c.n
		xv := x(c)
		if tv := fusedIn(xv, items, c, negate); tv != nil {
			return tv
		}
		found := make([]bool, nn)
		sawNull := make([]bool, nn)
		errs := unionBits(nn, xv.errs)
		if xv.kind == value.KindNull || xv.kind == kindDynamic || xv.nulls != nil {
			for k := 0; k < nn; k++ {
				if !relation.BitGet(errs, k) && xv.null(k) {
					sawNull[k] = true
				}
			}
		}
		// Items run in list order; a lane already found (or erred) skips the
		// remaining items, exactly like the row loop's break — including the
		// suppression of later items' errors.
		for _, itf := range items {
			iv := itf(c)
			cmp := cmpTruth(xv, iv, OpEq, nn)
			for k := 0; k < nn; k++ {
				if found[k] || relation.BitGet(errs, k) {
					continue
				}
				if relation.BitGet(cmp.errs, k) {
					errs = setBit(errs, nn, k)
					continue
				}
				// An Unknown lane means x or the item was NULL (the row
				// loop's sawNull arm); a True lane is a match.
				switch cmp.t[k] {
				case truthT:
					found[k] = true
				case truthU:
					sawNull[k] = true
				}
			}
		}
		out := &truthVec{t: make([]uint8, nn), errs: errs}
		for k := 0; k < nn; k++ {
			var t uint8
			switch {
			case found[k]:
				t = truthT
			case sawNull[k]:
				t = truthU
			}
			if negate {
				t = truthNot(t)
			}
			out.t[k] = t
		}
		return out
	}, nil
}

// fusedIn handles the dominant IN shape — a typed, error-free column probed
// against same-kind non-NULL scalar items — in one pass over the payload,
// with no per-item vectors or merge state. Returns nil when the shape does
// not apply and the general merge must run. Semantics are exactly the
// general path's: items cannot err or be NULL here, so a lane is True on
// the first match, Unknown when x is NULL, False otherwise.
func fusedIn(xv *bvec, items []batchFn, c *bctx, negate bool) *truthVec {
	if xv.scalar || xv.errs != nil {
		return nil
	}
	switch xv.kind {
	case value.KindInt, value.KindString, value.KindBool, value.KindDate:
	default:
		return nil
	}
	nn := c.n
	var intLits []int64
	var strLits []string
	for _, itf := range items {
		iv := itf(c)
		if !iv.scalar || iv.kind != xv.kind || iv.nulls != nil || iv.errs != nil {
			return nil
		}
		if xv.kind == value.KindString {
			strLits = append(strLits, iv.strs[0])
		} else {
			intLits = append(intLits, iv.ints[0])
		}
	}
	out := &truthVec{t: make([]uint8, nn)}
	if xv.kind == value.KindString {
		for k, a := range xv.strs[:nn] {
			for _, b := range strLits {
				if a == b {
					out.t[k] = truthT
					break
				}
			}
		}
	} else {
		for k, a := range xv.ints[:nn] {
			for _, b := range intLits {
				if a == b {
					out.t[k] = truthT
					break
				}
			}
		}
	}
	overlayUnknown(out.t, xv.nulls)
	if negate {
		for k, t := range out.t {
			out.t[k] = truthNot(t)
		}
	}
	return out
}

// scalarVec builds the broadcast vector of one literal.
func scalarVec(v value.Value) *bvec {
	switch v.Kind() {
	case value.KindNull:
		return &bvec{kind: value.KindNull, scalar: true}
	case value.KindInt:
		return &bvec{kind: value.KindInt, scalar: true, ints: []int64{v.Int()}}
	case value.KindFloat:
		return &bvec{kind: value.KindFloat, scalar: true, floats: []float64{v.Float()}}
	case value.KindString:
		return &bvec{kind: value.KindString, scalar: true, strs: []string{v.Str()}}
	case value.KindBool:
		var b int64
		if v.Bool() {
			b = 1
		}
		return &bvec{kind: value.KindBool, scalar: true, ints: []int64{b}}
	case value.KindDate:
		return &bvec{kind: value.KindDate, scalar: true, ints: []int64{v.DateDays()}}
	}
	return &bvec{kind: kindDynamic, scalar: true, vals: []value.Value{v}}
}

// gatherCol materialises a column reference over the window's lanes. With an
// identity window and a typed column, payloads alias the column's arrays —
// zero copies; only null bits translate to lane space.
func gatherCol(col *relation.Col, c *bctx) *bvec {
	n := c.n
	if col.Boxed != nil {
		if c.rows == nil {
			return &bvec{kind: kindDynamic, vals: col.Boxed[c.lo : c.lo+n]}
		}
		vals := make([]value.Value, n)
		for k := 0; k < n; k++ {
			vals[k] = col.Boxed[c.rows[c.lo+k]]
		}
		return &bvec{kind: kindDynamic, vals: vals}
	}
	if col.Kind == value.KindNull {
		return &bvec{kind: value.KindNull}
	}
	out := &bvec{kind: col.Kind}
	if c.rows == nil {
		lo := c.lo
		switch col.Kind {
		case value.KindFloat:
			out.floats = col.Floats[lo : lo+n]
		case value.KindString:
			out.strs = col.Strs[lo : lo+n]
		default:
			out.ints = col.Ints[lo : lo+n]
		}
		if col.Nulls != nil {
			for k := 0; k < n; k++ {
				if relation.BitGet(col.Nulls, lo+k) {
					out.nulls = setBit(out.nulls, n, k)
				}
			}
		}
		return out
	}
	rows := c.rows[c.lo : c.lo+n]
	switch col.Kind {
	case value.KindFloat:
		fs := make([]float64, n)
		for k, ri := range rows {
			fs[k] = col.Floats[ri]
		}
		out.floats = fs
	case value.KindString:
		ss := make([]string, n)
		for k, ri := range rows {
			ss[k] = col.Strs[ri]
		}
		out.strs = ss
	default:
		is := make([]int64, n)
		for k, ri := range rows {
			is[k] = col.Ints[ri]
		}
		out.ints = is
	}
	if col.Nulls != nil {
		for k, ri := range rows {
			if relation.BitGet(col.Nulls, int(ri)) {
				out.nulls = setBit(out.nulls, n, k)
			}
		}
	}
	return out
}

// Three-valued truth lanes, encoded to match value.Truth's semantics.
const (
	truthF uint8 = 0
	truthT uint8 = 1
	truthU uint8 = 2
)

func truthAnd(a, b uint8) uint8 {
	if a == truthF || b == truthF {
		return truthF
	}
	if a == truthU || b == truthU {
		return truthU
	}
	return truthT
}

func truthOr(a, b uint8) uint8 {
	if a == truthT || b == truthT {
		return truthT
	}
	if a == truthU || b == truthU {
		return truthU
	}
	return truthF
}

func truthNot(a uint8) uint8 {
	switch a {
	case truthT:
		return truthF
	case truthF:
		return truthT
	}
	return truthU
}

// truthVec is a predicate vector: one truth lane each, plus error bits.
type truthVec struct {
	t    []uint8
	errs []uint64
}

// toTruth converts a value vector to truth lanes under value.TruthOf:
// booleans map directly, NULL is Unknown, any other kind errors — lanes that
// would error get their bit set.
func toTruth(v *bvec, n int) *truthVec {
	tv := &truthVec{t: make([]uint8, n), errs: unionBits(n, v.errs)}
	switch v.kind {
	case value.KindNull:
		for k := range tv.t {
			tv.t[k] = truthU
		}
	case value.KindBool:
		s := v.stride()
		for k := 0; k < n; k++ {
			if relation.BitGet(v.nulls, k) {
				tv.t[k] = truthU
			} else if v.ints[k*s] != 0 {
				tv.t[k] = truthT
			}
		}
	case kindDynamic:
		for k := 0; k < n; k++ {
			if relation.BitGet(tv.errs, k) {
				continue
			}
			t, err := value.TruthOf(v.vals[v.pi(k)])
			if err != nil {
				tv.errs = setBit(tv.errs, n, k)
				continue
			}
			switch t {
			case value.True:
				tv.t[k] = truthT
			case value.Unknown:
				tv.t[k] = truthU
			}
		}
	default:
		// A statically non-boolean vector: NULL lanes are Unknown, the rest
		// would fail TruthOf on the row path.
		for k := 0; k < n; k++ {
			if relation.BitGet(tv.errs, k) {
				continue
			}
			if v.null(k) {
				tv.t[k] = truthU
			} else {
				tv.errs = setBit(tv.errs, n, k)
			}
		}
	}
	return tv
}

// fromTruth converts truth lanes back to a boolean value vector (Unknown
// becomes NULL, as Truth.Value does).
func fromTruth(tv *truthVec, n int) *bvec {
	out := &bvec{kind: value.KindBool, ints: make([]int64, n), errs: tv.errs}
	for k := 0; k < n; k++ {
		switch tv.t[k] {
		case truthT:
			out.ints[k] = 1
		case truthU:
			out.nulls = setBit(out.nulls, n, k)
		}
	}
	return out
}

// andOrTruth combines two truth vectors with the row path's exact
// short-circuit discipline: a left lane that decides the result suppresses
// the right side's value and error on that lane.
func andOrTruth(lt, rt *truthVec, isAnd bool, n int) *truthVec {
	out := &truthVec{t: make([]uint8, n)}
	if lt.errs == nil && rt.errs == nil {
		// No errors anywhere: pure lane algebra.
		if isAnd {
			for k, a := range lt.t[:n] {
				out.t[k] = truthAnd(a, rt.t[k])
			}
		} else {
			for k, a := range lt.t[:n] {
				out.t[k] = truthOr(a, rt.t[k])
			}
		}
		return out
	}
	for k := 0; k < n; k++ {
		if relation.BitGet(lt.errs, k) {
			out.errs = setBit(out.errs, n, k)
			continue
		}
		a := lt.t[k]
		if isAnd && a == truthF {
			out.t[k] = truthF
			continue
		}
		if !isAnd && a == truthT {
			out.t[k] = truthT
			continue
		}
		if relation.BitGet(rt.errs, k) {
			out.errs = setBit(out.errs, n, k)
			continue
		}
		if isAnd {
			out.t[k] = truthAnd(a, rt.t[k])
		} else {
			out.t[k] = truthOr(a, rt.t[k])
		}
	}
	return out
}

// cmpWant returns which comparison outcomes (-1, 0, +1) the operator
// accepts.
func cmpWant(op BinaryOp) (lt, eq, gt bool) {
	switch op {
	case OpEq:
		return false, true, false
	case OpNe:
		return true, false, true
	case OpLt:
		return true, false, false
	case OpLe:
		return true, true, false
	case OpGt:
		return false, false, true
	case OpGe:
		return false, true, true
	}
	return false, false, false
}

// cmpTruth compares two vectors lane-wise under the row path's compare(),
// straight to truth lanes: NULL lanes yield Unknown; comparable static kinds
// run typed loops; statically incomparable kinds err on every
// double-non-NULL lane; dynamic operands compare boxed.
func cmpTruth(l, r *bvec, op BinaryOp, n int) *truthVec {
	if l.kind == value.KindNull || r.kind == value.KindNull {
		out := &truthVec{t: make([]uint8, n), errs: unionBits(n, l.errs, r.errs)}
		for k := range out.t {
			out.t[k] = truthU
		}
		return out
	}
	out := &truthVec{t: make([]uint8, n), errs: unionBits(n, l.errs, r.errs)}
	if l.kind == kindDynamic || r.kind == kindDynamic {
		for k := 0; k < n; k++ {
			if relation.BitGet(out.errs, k) {
				continue
			}
			t, err := compare(l.lane(k), r.lane(k), op)
			if err != nil {
				out.errs = setBit(out.errs, n, k)
				continue
			}
			switch t {
			case value.True:
				out.t[k] = truthT
			case value.Unknown:
				out.t[k] = truthU
			}
		}
		return out
	}
	nulls := unionBits(n, l.nulls, r.nulls)
	wlt, weq, wgt := cmpWant(op)
	lk, rk := l.kind, r.kind
	intKinds := func(a, b value.Kind) bool { return a == b && (a == value.KindBool || a == value.KindDate) }
	switch {
	case lk == value.KindInt && rk == value.KindInt, intKinds(lk, rk):
		// Exact integer comparison; BOOL and DATE share the payload rule.
		cmpOrdLanes(out.t, l.ints, r.ints, l.scalar, r.scalar, wlt, weq, wgt)
	case (lk == value.KindInt || lk == value.KindFloat) && (rk == value.KindInt || rk == value.KindFloat):
		// Mixed numeric: both sides widen to float64, as Compare does.
		xs, xsc := floatLanes(l, n)
		ys, ysc := floatLanes(r, n)
		cmpFloatLanes(out.t, xs, ys, xsc, ysc, wlt, weq, wgt)
	case lk == value.KindString && rk == value.KindString:
		cmpOrdLanes(out.t, l.strs, r.strs, l.scalar, r.scalar, wlt, weq, wgt)
	default:
		// Statically incomparable kinds: every lane where both sides are
		// non-NULL would error in Compare; NULL lanes are Unknown.
		for k := 0; k < n; k++ {
			if relation.BitGet(nulls, k) {
				out.t[k] = truthU
			} else {
				out.errs = setBit(out.errs, n, k)
			}
		}
		return out
	}
	overlayUnknown(out.t, nulls)
	return out
}

// overlayUnknown marks every NULL lane Unknown, overriding whatever the
// payload loop computed from that lane's zero-valued slot.
func overlayUnknown(t []uint8, nulls []uint64) {
	if nulls == nil {
		return
	}
	for wi, w := range nulls {
		for ; w != 0; w &= w - 1 {
			t[wi*64+bits.TrailingZeros64(w)] = truthU
		}
	}
}

// cmpOrdLanes fills dst with 1 where the selected orderings hold, testing
// the want flags before comparing so only the needed comparisons run (for
// strings that is the difference between one equality probe and three full
// collations per lane). Scalar operands hoist out of the loop.
func cmpOrdLanes[T int64 | string](dst []uint8, xs, ys []T, xsc, ysc bool, wlt, weq, wgt bool) {
	n := len(dst)
	switch {
	case xsc && ysc:
		a, b := xs[0], ys[0]
		if (wlt && a < b) || (weq && a == b) || (wgt && a > b) {
			for k := range dst {
				dst[k] = 1
			}
		}
	case ysc:
		b := ys[0]
		for k, a := range xs[:n] {
			if (wlt && a < b) || (weq && a == b) || (wgt && a > b) {
				dst[k] = 1
			}
		}
	case xsc:
		a := xs[0]
		for k, b := range ys[:n] {
			if (wlt && a < b) || (weq && a == b) || (wgt && a > b) {
				dst[k] = 1
			}
		}
	default:
		ys = ys[:n]
		for k, a := range xs[:n] {
			b := ys[k]
			if (wlt && a < b) || (weq && a == b) || (wgt && a > b) {
				dst[k] = 1
			}
		}
	}
}

// floatLanes returns v's payload widened to float64 lanes (scalars stay
// one-slot). Only called for numeric vectors.
func floatLanes(v *bvec, n int) ([]float64, bool) {
	if v.kind == value.KindFloat {
		return v.floats, v.scalar
	}
	if v.scalar {
		return []float64{float64(v.ints[0])}, true
	}
	fs := make([]float64, n)
	for k, a := range v.ints[:n] {
		fs[k] = float64(a)
	}
	return fs, false
}

// cmpFloatLanes is cmpOrdLanes under Compare's float ordering: equality is
// "neither less nor greater", so -0 equals +0 and NaN compares equal to
// everything (unordered), exactly as the boxed comparator behaves.
func cmpFloatLanes(dst []uint8, xs, ys []float64, xsc, ysc bool, wlt, weq, wgt bool) {
	n := len(dst)
	hit := func(a, b float64) bool {
		return (wlt && a < b) || (wgt && a > b) || (weq && !(a < b) && !(a > b))
	}
	switch {
	case xsc && ysc:
		if hit(xs[0], ys[0]) {
			for k := range dst {
				dst[k] = 1
			}
		}
	case ysc:
		b := ys[0]
		for k, a := range xs[:n] {
			if (wlt && a < b) || (wgt && a > b) || (weq && !(a < b) && !(a > b)) {
				dst[k] = 1
			}
		}
	case xsc:
		a := xs[0]
		for k, b := range ys[:n] {
			if (wlt && a < b) || (wgt && a > b) || (weq && !(a < b) && !(a > b)) {
				dst[k] = 1
			}
		}
	default:
		ys = ys[:n]
		for k, a := range xs[:n] {
			b := ys[k]
			if (wlt && a < b) || (wgt && a > b) || (weq && !(a < b) && !(a > b)) {
				dst[k] = 1
			}
		}
	}
}

// negVec negates a vector under value.Neg: NULL passes through, numeric
// kinds negate their payloads, anything else errors per non-NULL lane.
func negVec(x *bvec, n int) *bvec {
	switch x.kind {
	case value.KindNull:
		return x
	case value.KindInt:
		out := &bvec{kind: value.KindInt, ints: make([]int64, n), nulls: x.nulls, errs: x.errs}
		s := x.stride()
		for k := 0; k < n; k++ {
			out.ints[k] = -x.ints[k*s]
		}
		return out
	case value.KindFloat:
		out := &bvec{kind: value.KindFloat, floats: make([]float64, n), nulls: x.nulls, errs: x.errs}
		s := x.stride()
		for k := 0; k < n; k++ {
			out.floats[k] = -x.floats[k*s]
		}
		return out
	case kindDynamic:
		out := &bvec{kind: kindDynamic, vals: make([]value.Value, n), errs: unionBits(n, x.errs)}
		for k := 0; k < n; k++ {
			if relation.BitGet(out.errs, k) {
				continue
			}
			v, err := value.Neg(x.vals[x.pi(k)])
			if err != nil {
				out.errs = setBit(out.errs, n, k)
				continue
			}
			out.vals[k] = v
		}
		return out
	}
	// String/Bool/Date: NULL lanes stay NULL, the rest error.
	out := &bvec{kind: value.KindNull, errs: unionBits(n, x.errs)}
	errAllNonNull(out, x, n)
	return out
}

// errAllNonNull marks every non-NULL, non-erring lane of x as an error in
// out — the vector image of a per-row kind error that NULL inputs bypass.
func errAllNonNull(out *bvec, x *bvec, n int) {
	for k := 0; k < n; k++ {
		if relation.BitGet(out.errs, k) {
			continue
		}
		if !x.null(k) {
			out.errs = setBit(out.errs, n, k)
		}
	}
}

// intArithLanes runs one exact integer +, -, or * over every lane, with
// scalar operands hoisted out of the loop.
func intArithLanes(dst []int64, xs, ys []int64, xsc, ysc bool, op BinaryOp) {
	n := len(dst)
	switch {
	case xsc && ysc:
		var v int64
		switch op {
		case OpAdd:
			v = xs[0] + ys[0]
		case OpSub:
			v = xs[0] - ys[0]
		default:
			v = xs[0] * ys[0]
		}
		for k := range dst {
			dst[k] = v
		}
	case ysc:
		b := ys[0]
		switch op {
		case OpAdd:
			for k, a := range xs[:n] {
				dst[k] = a + b
			}
		case OpSub:
			for k, a := range xs[:n] {
				dst[k] = a - b
			}
		default:
			for k, a := range xs[:n] {
				dst[k] = a * b
			}
		}
	case xsc:
		a := xs[0]
		switch op {
		case OpAdd:
			for k, b := range ys[:n] {
				dst[k] = a + b
			}
		case OpSub:
			for k, b := range ys[:n] {
				dst[k] = a - b
			}
		default:
			for k, b := range ys[:n] {
				dst[k] = a * b
			}
		}
	default:
		ys = ys[:n]
		switch op {
		case OpAdd:
			for k, a := range xs[:n] {
				dst[k] = a + ys[k]
			}
		case OpSub:
			for k, a := range xs[:n] {
				dst[k] = a - ys[k]
			}
		default:
			for k, a := range xs[:n] {
				dst[k] = a * ys[k]
			}
		}
	}
}

// arithVec applies +,-,*,/,% lane-wise under value's arith: NULL operands
// yield NULL before any kind or zero checks; DATE shifts by integer days and
// differences to days; integer pairs stay exact (division promoting
// remainders to float per lane); any float widens both sides; everything
// else errors per double-non-NULL lane.
func arithVec(l, r *bvec, op BinaryOp, n int) *bvec {
	if l.kind == value.KindNull || r.kind == value.KindNull {
		return &bvec{kind: value.KindNull, errs: unionBits(n, l.errs, r.errs)}
	}
	if l.kind == kindDynamic || r.kind == kindDynamic {
		var fn func(a, b value.Value) (value.Value, error)
		switch op {
		case OpAdd:
			fn = value.Add
		case OpSub:
			fn = value.Sub
		case OpMul:
			fn = value.Mul
		case OpDiv:
			fn = value.Div
		default:
			fn = value.Mod
		}
		out := &bvec{kind: kindDynamic, vals: make([]value.Value, n), errs: unionBits(n, l.errs, r.errs)}
		for k := 0; k < n; k++ {
			if relation.BitGet(out.errs, k) {
				continue
			}
			v, err := fn(l.lane(k), r.lane(k))
			if err != nil {
				out.errs = setBit(out.errs, n, k)
				continue
			}
			out.vals[k] = v
		}
		return out
	}
	lk, rk := l.kind, r.kind
	ls, rs := l.stride(), r.stride()
	nulls := unionBits(n, l.nulls, r.nulls)
	errs := unionBits(n, l.errs, r.errs)
	// DATE arithmetic: date ± int shifts days, date - date counts days.
	if lk == value.KindDate && rk == value.KindInt && (op == OpAdd || op == OpSub) {
		out := &bvec{kind: value.KindDate, ints: make([]int64, n), nulls: nulls, errs: errs}
		for k := 0; k < n; k++ {
			if op == OpAdd {
				out.ints[k] = l.ints[k*ls] + r.ints[k*rs]
			} else {
				out.ints[k] = l.ints[k*ls] - r.ints[k*rs]
			}
		}
		return out
	}
	if lk == value.KindDate && rk == value.KindDate && op == OpSub {
		out := &bvec{kind: value.KindInt, ints: make([]int64, n), nulls: nulls, errs: errs}
		for k := 0; k < n; k++ {
			out.ints[k] = l.ints[k*ls] - r.ints[k*rs]
		}
		return out
	}
	numeric := func(k value.Kind) bool { return k == value.KindInt || k == value.KindFloat }
	if !numeric(lk) || !numeric(rk) {
		out := &bvec{kind: value.KindNull, nulls: nil, errs: errs}
		// NULL lanes bypass the kind error (arith checks NULL first).
		for k := 0; k < n; k++ {
			if relation.BitGet(out.errs, k) {
				continue
			}
			if !relation.BitGet(nulls, k) {
				out.errs = setBit(out.errs, n, k)
			}
		}
		return out
	}
	if lk == value.KindInt && rk == value.KindInt {
		xs, ys := l.ints, r.ints
		switch op {
		case OpAdd, OpSub, OpMul:
			out := &bvec{kind: value.KindInt, ints: make([]int64, n), nulls: nulls, errs: errs}
			intArithLanes(out.ints, xs, ys, l.scalar, r.scalar, op)
			return out
		case OpDiv:
			// Integer division's result kind is per-lane (exact stays INT,
			// remainders promote to FLOAT), so the output is dynamic.
			out := &bvec{kind: kindDynamic, vals: make([]value.Value, n), errs: errs}
			for k := 0; k < n; k++ {
				if relation.BitGet(out.errs, k) {
					continue
				}
				if relation.BitGet(nulls, k) {
					out.vals[k] = value.Null
					continue
				}
				x, y := xs[k*ls], ys[k*rs]
				if y == 0 {
					out.errs = setBit(out.errs, n, k)
					continue
				}
				if x%y == 0 {
					out.vals[k] = value.NewInt(x / y)
				} else {
					out.vals[k] = value.NewFloat(float64(x) / float64(y))
				}
			}
			return out
		default: // OpMod
			out := &bvec{kind: value.KindInt, ints: make([]int64, n), nulls: nulls, errs: errs}
			for k := 0; k < n; k++ {
				if relation.BitGet(out.errs, k) || relation.BitGet(nulls, k) {
					continue
				}
				y := ys[k*rs]
				if y == 0 {
					out.errs = setBit(out.errs, n, k)
					continue
				}
				out.ints[k] = xs[k*ls] % y
			}
			return out
		}
	}
	// Mixed numeric: widen both sides to float64, as arith's AsFloat does.
	lf := func(k int) float64 {
		if lk == value.KindInt {
			return float64(l.ints[k*ls])
		}
		return l.floats[k*ls]
	}
	rf := func(k int) float64 {
		if rk == value.KindInt {
			return float64(r.ints[k*rs])
		}
		return r.floats[k*rs]
	}
	out := &bvec{kind: value.KindFloat, floats: make([]float64, n), nulls: nulls, errs: errs}
	switch op {
	case OpAdd:
		for k := 0; k < n; k++ {
			out.floats[k] = lf(k) + rf(k)
		}
	case OpSub:
		for k := 0; k < n; k++ {
			out.floats[k] = lf(k) - rf(k)
		}
	case OpMul:
		for k := 0; k < n; k++ {
			out.floats[k] = lf(k) * rf(k)
		}
	case OpDiv:
		for k := 0; k < n; k++ {
			if relation.BitGet(out.errs, k) || relation.BitGet(nulls, k) {
				continue
			}
			y := rf(k)
			if y == 0 {
				out.errs = setBit(out.errs, n, k)
				continue
			}
			out.floats[k] = lf(k) / y
		}
	default: // OpMod
		for k := 0; k < n; k++ {
			if relation.BitGet(out.errs, k) || relation.BitGet(nulls, k) {
				continue
			}
			y := rf(k)
			if y == 0 {
				out.errs = setBit(out.errs, n, k)
				continue
			}
			out.floats[k] = math.Mod(lf(k), y)
		}
	}
	return out
}
