package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Property tests for the vectorized backend's core contract: bit-identity
// with the per-row Program. Random expression trees drawn from the
// vectorizer's full coverage run over random typed columns seeded with the
// adversarial values (-0, NaN, infinities, MinInt64, big ints past 2^53,
// NULLs everywhere), through both backends, and every lane must agree —
// same kind, same payload bits (floats compared via Float64bits), and the
// same error outcome per window.

// batchPropCols is the test schema: every payload family, plus an
// all-NULL column.
var batchPropCols = relation.Schema{
	{Name: "I", Kind: value.KindInt},
	{Name: "J", Kind: value.KindInt},
	{Name: "F", Kind: value.KindFloat},
	{Name: "G", Kind: value.KindFloat},
	{Name: "S", Kind: value.KindString},
	{Name: "B", Kind: value.KindBool},
	{Name: "D", Kind: value.KindDate},
	{Name: "N", Kind: value.KindInt},
}

// genBatchRel builds a random relation over batchPropCols whose cells are
// drawn from pools of boundary values, with ~1 in 5 cells NULL (column N is
// always NULL).
func genBatchRel(rng *rand.Rand, n int) *relation.Relation {
	negZero := math.Copysign(0, -1)
	ints := []int64{0, 1, -1, 2, 7, 19999, 20000, 1 << 53, (1 << 53) + 1,
		1 << 62, math.MaxInt64, math.MinInt64}
	floats := []float64{0, negZero, 1, -1.5, 0.5, 1e300, -1e300,
		math.NaN(), math.Inf(1), math.Inf(-1), float64(1 << 53)}
	strs := []string{"", "a", "b", "ab", "Good", "Excellent", "zzz"}
	r := relation.New("prop", batchPropCols.Clone())
	for i := 0; i < n; i++ {
		cell := func(mk func() value.Value) value.Value {
			if rng.Intn(5) == 0 {
				return value.Null
			}
			return mk()
		}
		r.MustAppend(
			cell(func() value.Value { return value.NewInt(ints[rng.Intn(len(ints))]) }),
			cell(func() value.Value { return value.NewInt(ints[rng.Intn(len(ints))]) }),
			cell(func() value.Value { return value.NewFloat(floats[rng.Intn(len(floats))]) }),
			cell(func() value.Value { return value.NewFloat(floats[rng.Intn(len(floats))]) }),
			cell(func() value.Value { return value.NewString(strs[rng.Intn(len(strs))]) }),
			cell(func() value.Value { return value.NewBool(rng.Intn(2) == 0) }),
			cell(func() value.Value { return value.NewDateDays(int64(rng.Intn(40000) - 10000)) }),
			value.Null,
		)
	}
	return r
}

// genBatchExpr draws a random expression tree from the vectorizer's
// coverage: column refs and literals under comparisons, arithmetic,
// AND/OR/NOT, negation, IS [NOT] NULL, [NOT] IN and [NOT] BETWEEN. Type
// mismatches, division by zero and overflow are all in-distribution — they
// exercise the error-parity contract.
func genBatchExpr(rng *rand.Rand, depth int) Expr {
	lits := []value.Value{
		value.NewInt(0), value.NewInt(1), value.NewInt(-1), value.NewInt(7),
		value.NewInt(20000), value.NewInt(math.MaxInt64), value.NewInt(math.MinInt64),
		value.NewFloat(0), value.NewFloat(math.Copysign(0, -1)),
		value.NewFloat(math.NaN()), value.NewFloat(math.Inf(1)), value.NewFloat(1.5),
		value.NewString(""), value.NewString("a"), value.NewString("Good"),
		value.NewBool(true), value.NewBool(false), value.Null,
	}
	leaf := func() Expr {
		if rng.Intn(2) == 0 {
			return &ColumnRef{Name: batchPropCols[rng.Intn(len(batchPropCols))].Name}
		}
		return &Literal{Val: lits[rng.Intn(len(lits))]}
	}
	if depth <= 0 || rng.Intn(4) == 0 {
		return leaf()
	}
	sub := func() Expr { return genBatchExpr(rng, depth-1) }
	switch rng.Intn(8) {
	case 0:
		ops := []BinaryOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: sub(), R: sub()}
	case 1:
		ops := []BinaryOp{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: sub(), R: sub()}
	case 2:
		ops := []BinaryOp{OpAnd, OpOr}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: sub(), R: sub()}
	case 3:
		return &Unary{Op: OpNot, X: sub()}
	case 4:
		return &Unary{Op: OpNeg, X: sub()}
	case 5:
		return &IsNull{X: sub(), Negate: rng.Intn(2) == 0}
	case 6:
		items := make([]Expr, 1+rng.Intn(3))
		for i := range items {
			items[i] = sub()
		}
		return &InList{X: sub(), Items: items, Negate: rng.Intn(2) == 0}
	default:
		return &Between{X: sub(), Lo: sub(), Hi: sub(), Negate: rng.Intn(2) == 0}
	}
}

// bitIdentical is value identity at the representation level: same kind and
// same payload bits. Floats compare via Float64bits so -0 vs +0 and NaN
// payloads cannot silently diverge between the two backends.
func bitIdentical(a, b value.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case value.KindNull:
		return true
	case value.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case value.KindString:
		return a.Str() == b.Str()
	case value.KindBool:
		return a.Bool() == b.Bool()
	case value.KindDate:
		return a.DateDays() == b.DateDays()
	default:
		return a.Int() == b.Int()
	}
}

func batchPropResolvers(r *relation.Relation) (BatchResolver, Resolver) {
	cols := r.Columns()
	batch := func(name string) (*relation.Col, bool) {
		if i := r.Schema.IndexOf(name); i >= 0 {
			return cols[i], true
		}
		return nil, false
	}
	row := func(name string) (int, bool) {
		if i := r.Schema.IndexOf(name); i >= 0 {
			return i, true
		}
		return 0, false
	}
	return batch, row
}

// TestBatchBitIdentityProperty is the main property: for random expressions
// and random data, EvalPos and SelectInto agree with the row program on
// every lane — identical values (including float bit patterns and NULL
// tri-state) when no row errs, and a reported failure whenever any row
// would err.
func TestBatchBitIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(70)
		r := genBatchRel(rng, n)
		rows := r.TupleRows()
		e := genBatchExpr(rng, 3)
		batchRes, rowRes := batchPropResolvers(r)

		bp, err := CompileBatch(e, batchRes)
		if err != nil {
			t.Fatalf("trial %d: %s unexpectedly declined: %v", trial, e.SQL(), err)
		}
		rp, err := Compile(e, rowRes)
		if err != nil {
			t.Fatalf("trial %d: row compile of %s: %v", trial, e.SQL(), err)
		}

		// Row-path reference over the full window.
		want := make([]value.Value, n)
		rowErr := false
		for i, row := range rows {
			v, err := rp.Eval(row)
			if err != nil {
				rowErr = true
				break
			}
			want[i] = v
		}

		out := make([]value.Value, n)
		ok := bp.EvalPos(nil, 0, n, value.KindInt, out)
		if rowErr {
			if ok {
				t.Fatalf("trial %d: %s: row path errs but batch reported ok", trial, e.SQL())
			}
		} else {
			if !ok {
				t.Fatalf("trial %d: %s: batch reported error but no row errs", trial, e.SQL())
			}
			for i := range want {
				if !bitIdentical(want[i], out[i]) {
					t.Fatalf("trial %d: %s: lane %d diverges: row %s (%v) vs batch %s (%v)",
						trial, e.SQL(), i, want[i], want[i].Kind(), out[i], out[i].Kind())
				}
			}
		}

		// Predicate parity: the surviving-row set of SelectInto matches
		// per-row EvalBool, with the same any-error failure contract.
		var survivors []int32
		selErr := false
		for i, row := range rows {
			keep, err := rp.EvalBool(row)
			if err != nil {
				selErr = true
				break
			}
			if keep {
				survivors = append(survivors, int32(i))
			}
		}
		dst := make([]int32, n)
		w, ok := bp.SelectInto(nil, 0, n, dst)
		if selErr {
			if ok {
				t.Fatalf("trial %d: %s: predicate row path errs but batch ok", trial, e.SQL())
			}
		} else {
			if !ok {
				t.Fatalf("trial %d: %s: batch select failed but no row errs", trial, e.SQL())
			}
			if w != len(survivors) {
				t.Fatalf("trial %d: %s: %d survivors, row path kept %d", trial, e.SQL(), w, len(survivors))
			}
			for i := range survivors {
				if dst[i] != survivors[i] {
					t.Fatalf("trial %d: %s: survivor %d = row %d, row path kept %d",
						trial, e.SQL(), i, dst[i], survivors[i])
				}
			}
		}
	}
}

// TestBatchBitIdentityWindowed pins the indexed-window form: evaluating a
// sub-window of a shuffled (and duplicating) index vector must agree lane
// for lane with the row program applied to the indexed rows, and EvalInto's
// KindFloat widening must match the row path's coerce rule.
func TestBatchBitIdentityWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		r := genBatchRel(rng, n)
		rows := r.TupleRows()
		e := genBatchExpr(rng, 3)
		batchRes, rowRes := batchPropResolvers(r)
		bp, err := CompileBatch(e, batchRes)
		if err != nil {
			t.Fatalf("trial %d: %s unexpectedly declined: %v", trial, e.SQL(), err)
		}
		rp, err := Compile(e, rowRes)
		if err != nil {
			t.Fatalf("trial %d: row compile: %v", trial, err)
		}

		m := 1 + rng.Intn(2*n)
		idx := make([]int32, m)
		for i := range idx {
			idx[i] = int32(rng.Intn(n)) // duplicates and gaps on purpose
		}
		lo := rng.Intn(m)
		hi := lo + 1 + rng.Intn(m-lo)

		want := make([]value.Value, m)
		rowErr := false
		for k := lo; k < hi; k++ {
			v, err := rp.Eval(rows[idx[k]])
			if err != nil {
				rowErr = true
				break
			}
			if v.Kind() == value.KindInt { // EvalPos(KindFloat) widens; mirror coerce
				v = value.NewFloat(float64(v.Int()))
			}
			want[k] = v
		}

		out := make([]value.Value, m)
		ok := bp.EvalPos(idx, lo, hi, value.KindFloat, out)
		if rowErr {
			if ok {
				t.Fatalf("trial %d: %s: window errs on row path but batch ok", trial, e.SQL())
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: %s: batch window failed but no row errs", trial, e.SQL())
		}
		for k := lo; k < hi; k++ {
			if !bitIdentical(want[k], out[k]) {
				t.Fatalf("trial %d: %s: window lane %d diverges: %s vs %s",
					trial, e.SQL(), k, want[k], out[k])
			}
		}
	}
}

// TestCompileBatchDeclines pins the fallback boundary: coverage gaps
// decline with ErrNotVectorizable instead of compiling wrong programs.
func TestCompileBatchDeclines(t *testing.T) {
	r := genBatchRel(rand.New(rand.NewSource(1)), 4)
	batchRes, _ := batchPropResolvers(r)
	for _, src := range []string{
		"S LIKE 'a%'",             // LIKE
		"S || 'x' = 'ax'",         // concatenation
		"UPPER(S) = 'A'",          // scalar function
		"Missing = 1",             // unresolvable column
		"I + 1 > 2 AND Q IS NULL", // unresolvable inside a conjunct
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompileBatch(e, batchRes); err == nil {
			t.Errorf("%s: expected decline, compiled", src)
		}
	}
}

// TestBatchWindowBoundedAllocs caps the vectorized per-window overhead: one
// SelectInto call over 10k lanes must allocate a bounded number of vectors
// (operand and truth lanes), never per-lane boxes.
func TestBatchWindowBoundedAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := genBatchRel(rng, 10000)
	n := r.Len()
	batchRes, _ := batchPropResolvers(r)
	e, err := Parse("I < 20000 AND S IN ('a', 'Good', 'zzz')")
	if err != nil {
		t.Fatal(err)
	}
	bp, err := CompileBatch(e, batchRes)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, n)
	allocs := testing.AllocsPerRun(10, func() {
		bp.SelectInto(nil, 0, n, dst)
	})
	if allocs > 40 {
		t.Fatalf("SelectInto allocates %.0f times per 10k-lane window; per-lane allocation regressed", allocs)
	}
}

// TestBatchDeclineFallsBackIdentically is the end-to-end fallback story in
// miniature: an expression the vectorizer declines still evaluates through
// the row path with the same results the batch-covered equivalent produces.
func TestBatchDeclineFallsBackIdentically(t *testing.T) {
	r := genBatchRel(rand.New(rand.NewSource(7)), 50)
	rows := r.TupleRows()
	_, rowRes := batchPropResolvers(r)
	covered, err := Parse("S = 'a' OR S = 'b'")
	if err != nil {
		t.Fatal(err)
	}
	declined, err := Parse("S LIKE 'a' OR S LIKE 'b'")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(covered, rowRes)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Compile(declined, rowRes)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		a, errA := cp.EvalBool(row)
		b, errB := dp.EvalBool(row)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("row %d: covered (%v,%v) vs declined (%v,%v)", i, a, errA, b, errB)
		}
	}
	if !strings.Contains(ErrNotVectorizable.Error(), "not vectorizable") {
		t.Fatalf("sentinel error text changed: %v", ErrNotVectorizable)
	}
}
