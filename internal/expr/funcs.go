package expr

import (
	"fmt"
	"math"
	"strings"

	"sheetmusiq/internal/value"
)

// AggregateNames lists the function names the SQL planner treats as
// aggregates rather than scalar functions.
var AggregateNames = map[string]bool{
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "COUNT": true,
	"COUNT_DISTINCT": true, "STDDEV": true,
}

// IsAggregateCall reports whether e is a call to an aggregate function.
func IsAggregateCall(e Expr) bool {
	f, ok := e.(*FuncCall)
	return ok && AggregateNames[f.Name]
}

// ContainsAggregate reports whether any node in e is an aggregate call.
func ContainsAggregate(e Expr) bool {
	found := false
	e.walk(func(n Expr) {
		if IsAggregateCall(n) {
			found = true
		}
	})
	return found
}

func evalFunc(f *FuncCall, env Env) (value.Value, error) {
	if AggregateNames[f.Name] {
		return value.Null, fmt.Errorf("expr: aggregate %s not allowed in a row context", f.Name)
	}
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := Eval(a, env)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	return CallScalar(f.Name, args)
}

func arity(name string, args []value.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("expr: %s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

// CallScalar invokes a scalar built-in by (upper-cased) name.
func CallScalar(name string, args []value.Value) (value.Value, error) {
	switch name {
	case "ABS":
		if err := arity(name, args, 1); err != nil {
			return value.Null, err
		}
		v := args[0]
		if v.IsNull() {
			return value.Null, nil
		}
		switch v.Kind() {
		case value.KindInt:
			if v.Int() < 0 {
				return value.NewInt(-v.Int()), nil
			}
			return v, nil
		case value.KindFloat:
			return value.NewFloat(math.Abs(v.Float())), nil
		}
		return value.Null, fmt.Errorf("expr: ABS over %s", v.Kind())
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return value.Null, fmt.Errorf("expr: ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return value.Null, fmt.Errorf("expr: ROUND over %s", args[0].Kind())
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].Kind() != value.KindInt {
				return value.Null, fmt.Errorf("expr: ROUND digits must be INTEGER")
			}
			digits = args[1].Int()
		}
		scale := math.Pow(10, float64(digits))
		return value.NewFloat(math.Round(f*scale) / scale), nil
	case "FLOOR", "CEIL":
		if err := arity(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return value.Null, fmt.Errorf("expr: %s over %s", name, args[0].Kind())
		}
		if name == "FLOOR" {
			return value.NewInt(int64(math.Floor(f))), nil
		}
		return value.NewInt(int64(math.Ceil(f))), nil
	case "UPPER", "LOWER":
		if err := arity(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindString {
			return value.Null, fmt.Errorf("expr: %s over %s", name, args[0].Kind())
		}
		if name == "UPPER" {
			return value.NewString(strings.ToUpper(args[0].Str())), nil
		}
		return value.NewString(strings.ToLower(args[0].Str())), nil
	case "LENGTH":
		if err := arity(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindString {
			return value.Null, fmt.Errorf("expr: LENGTH over %s", args[0].Kind())
		}
		return value.NewInt(int64(len(args[0].Str()))), nil
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return value.Null, fmt.Errorf("expr: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindString || args[1].Kind() != value.KindInt {
			return value.Null, fmt.Errorf("expr: SUBSTR(string, int[, int])")
		}
		s := args[0].Str()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(args) == 3 {
			if args[2].Kind() != value.KindInt {
				return value.Null, fmt.Errorf("expr: SUBSTR length must be INTEGER")
			}
			end = start + int(args[2].Int())
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return value.NewString(s[start:end]), nil
	case "IF":
		// IF(cond, then, else): the CASE-free conditional. A NULL condition
		// takes the else branch, like CASE WHEN.
		if err := arity(name, args, 3); err != nil {
			return value.Null, err
		}
		if !args[0].IsNull() && args[0].Bool() {
			return args[1], nil
		}
		return args[2], nil
	case "COALESCE":
		if len(args) == 0 {
			return value.Null, fmt.Errorf("expr: COALESCE expects at least 1 argument")
		}
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	case "TRIM":
		if err := arity(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindString {
			return value.Null, fmt.Errorf("expr: TRIM over %s", args[0].Kind())
		}
		return value.NewString(strings.TrimSpace(args[0].Str())), nil
	case "REPLACE":
		if err := arity(name, args, 3); err != nil {
			return value.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return value.Null, nil
			}
			if a.Kind() != value.KindString {
				return value.Null, fmt.Errorf("expr: REPLACE expects strings, got %s", a.Kind())
			}
		}
		return value.NewString(strings.ReplaceAll(args[0].Str(), args[1].Str(), args[2].Str())), nil
	case "SIGN":
		if err := arity(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return value.Null, fmt.Errorf("expr: SIGN over %s", args[0].Kind())
		}
		switch {
		case f > 0:
			return value.NewInt(1), nil
		case f < 0:
			return value.NewInt(-1), nil
		default:
			return value.NewInt(0), nil
		}
	case "POWER":
		if err := arity(name, args, 2); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null, nil
		}
		b, ok1 := args[0].AsFloat()
		e, ok2 := args[1].AsFloat()
		if !ok1 || !ok2 {
			return value.Null, fmt.Errorf("expr: POWER expects numerics")
		}
		return value.NewFloat(math.Pow(b, e)), nil
	case "YEAR", "MONTH", "DAY":
		if err := arity(name, args, 1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindDate {
			return value.Null, fmt.Errorf("expr: %s over %s", name, args[0].Kind())
		}
		t := args[0].Time()
		switch name {
		case "YEAR":
			return value.NewInt(int64(t.Year())), nil
		case "MONTH":
			return value.NewInt(int64(t.Month())), nil
		default:
			return value.NewInt(int64(t.Day())), nil
		}
	}
	return value.Null, fmt.Errorf("expr: unknown function %s", name)
}
