package expr

import "testing"

func fp(t *testing.T, src string) uint64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Fingerprint(e)
}

func TestFingerprintStability(t *testing.T) {
	// Re-parsing the same source, or an equivalent spelling, yields the
	// same fingerprint: whitespace, keyword case and column-name case are
	// all resolution-irrelevant.
	equiv := [][]string{
		{"Price < 15000", "price   <   15000", "PRICE < 15000"},
		{"Year BETWEEN 2003 AND 2005", "year between 2003 and 2005"},
		{"Model IN ('Civic', 'Jetta')", "model in ('Civic', 'Jetta')"},
		{"Condition IS NOT NULL", "condition IS NOT NULL"},
		{"UPPER(Model) = 'CIVIC'", "upper(Model) = 'CIVIC'"},
		{"-Price + 1", "- Price + 1"},
	}
	for _, group := range equiv {
		want := fp(t, group[0])
		for _, src := range group[1:] {
			if got := fp(t, src); got != want {
				t.Errorf("Fingerprint(%q) = %#x, want %#x (same as %q)", src, got, want, group[0])
			}
		}
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	// Every pair below is structurally different and must fingerprint
	// differently; several would collide under a naive node-multiset hash.
	distinct := []string{
		"Price < 15000",
		"Price <= 15000",
		"Price < 15001",
		"Mileage < 15000",
		"NOT Price < 15000",
		"Price < 15000 AND Year > 2003",
		"Price < 15000 OR Year > 2003",
		// Same node multiset, different association.
		"(a AND b) OR c",
		"a AND (b OR c)",
		// Literal case matters even though column case does not.
		"Model = 'Civic'",
		"Model = 'civic'",
		// Negation and arity variants of the same operators.
		"Model IN ('Civic')",
		"Model NOT IN ('Civic')",
		"Model IN ('Civic', 'Jetta')",
		"Year BETWEEN 2003 AND 2005",
		"Year NOT BETWEEN 2003 AND 2005",
		"Condition IS NULL",
		"Condition IS NOT NULL",
	}
	seen := make(map[uint64]string, len(distinct))
	for _, src := range distinct {
		h := fp(t, src)
		if prev, dup := seen[h]; dup {
			t.Errorf("Fingerprint collision: %q and %q both hash to %#x", prev, src, h)
		}
		seen[h] = src
	}
}

func TestFingerprintChaining(t *testing.T) {
	// The chaining helpers are order-dependent: folding the same pieces in
	// a different order yields a different fingerprint, and folding a
	// string is case-insensitive like column resolution.
	a := FingerprintString(FingerprintCombine(FingerprintCombine(7, 1), 2), "AvgP")
	b := FingerprintString(FingerprintCombine(FingerprintCombine(7, 2), 1), "AvgP")
	if a == b {
		t.Fatal("chaining must be order-dependent")
	}
	if FingerprintString(7, "AvgP") != FingerprintString(7, "avgp") {
		t.Fatal("FingerprintString must fold case-insensitively")
	}
	if FingerprintString(7, "AvgP") == FingerprintString(8, "AvgP") {
		t.Fatal("FingerprintString must depend on the incoming hash")
	}
}

func TestProgramFingerprintMatchesSource(t *testing.T) {
	e, err := Parse("Price / (Year - 2004)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(e, func(name string) (int, bool) {
		switch name {
		case "Price":
			return 0, true
		case "Year":
			return 1, true
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() != Fingerprint(e) {
		t.Fatal("Program.Fingerprint must equal the source expression's fingerprint")
	}
}
