package expr

import (
	"strings"
	"testing"

	"sheetmusiq/internal/value"
)

// compileRow is the positional layout the compiled-vs-interpreted tests
// share with env(): same names, same values.
var compileCols = []string{"Price", "Year", "Model", "Mileage", "Condition", "Ratio", "Sold", "When", "Note"}

func compileEnvRow() []value.Value {
	m := env()
	row := make([]value.Value, len(compileCols))
	for i, c := range compileCols {
		row[i] = m[c]
	}
	return row
}

func compileResolver() Resolver {
	return func(name string) (int, bool) {
		for i, c := range compileCols {
			if strings.EqualFold(c, name) {
				return i, true
			}
		}
		return 0, false
	}
}

// TestCompileMatchesEval runs a broad set of expressions through both the
// tree-walking evaluator and the compiled program and insists on identical
// values and identical error-ness.
func TestCompileMatchesEval(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3",
		"Price * 1000 / (Mileage + 1)",
		"Price * Ratio",
		"-Price + 7 % 3",
		"'a' || Model || 1",
		"Price < 20000 AND Condition IN ('Good', 'Excellent')",
		"Year = 2005 OR Year = 2006",
		"NOT Sold",
		"Note IS NULL",
		"Note IS NOT NULL",
		"Price BETWEEN 10000 AND 20000",
		"Price NOT BETWEEN 10000 AND 12000",
		"Model LIKE 'Je%'",
		"Model NOT IN ('Civic', 'Accord')",
		"Note + 1",
		"Note = 1",
		"Note IN (1, 2)",
		"1 IN (2, Note)",
		"UPPER(Model) = 'JETTA'",
		"ROUND(Ratio * 100, 1)",
		"COALESCE(Note, Price)",
		"ABS(-Price)",
		"LENGTH(Model) + 1",
		"SUBSTR(Model, 2, 3)",
		"YEAR(When) = Year",
		"CEIL(Ratio) * FLOOR(Ratio)",
		"Price / 0",     // errors in both paths
		"Model + 1",     // type error in both paths
		"NoSuchCol = 1", // unknown column errors at eval time in both paths
		"SUM(Price)",    // aggregate rejected in a row context in both paths
	}
	row := compileEnvRow()
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		want, wantErr := Eval(e, env())
		prog, err := Compile(e, compileResolver())
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		got, gotErr := prog.Eval(row)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: eval err %v, compiled err %v", src, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if want.Kind() != got.Kind() || !value.Equal(want, got) {
			t.Errorf("%s: eval %v (%s), compiled %v (%s)", src, want, want.Kind(), got, got.Kind())
		}
	}
}

// TestCompileBoolMatchesEvalBool pins predicate semantics (NULL counts as
// false) through the compiled path.
func TestCompileBoolMatchesEvalBool(t *testing.T) {
	srcs := []string{
		"Price < 20000",
		"Note = 1", // UNKNOWN → false
		"Note IS NULL",
		"Price < 20000 AND Note = 1",
		"Price < 20000 OR Note = 1",
	}
	row := compileEnvRow()
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		want, wantErr := EvalBool(e, env())
		prog, err := Compile(e, compileResolver())
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		got, gotErr := prog.EvalBool(row)
		if (wantErr == nil) != (gotErr == nil) || want != got {
			t.Errorf("%s: eval (%v, %v), compiled (%v, %v)", src, want, wantErr, got, gotErr)
		}
	}
	// Non-boolean predicates report the same shaped error.
	e := MustParse("Price + 1")
	if _, err := EvalBool(e, env()); err == nil {
		t.Fatal("EvalBool accepted a non-boolean predicate")
	}
	prog, err := Compile(e, compileResolver())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.EvalBool(row); err == nil || !strings.Contains(err.Error(), "not boolean") {
		t.Fatalf("compiled EvalBool error = %v, want a not-boolean error", err)
	}
}

// TestCompileShortCircuit verifies AND/OR skip the right operand exactly
// like the interpreter: an erroring right side is never reached when the
// left side decides.
func TestCompileShortCircuit(t *testing.T) {
	for _, src := range []string{
		"1 = 2 AND (1 / 0) = 1",
		"1 = 1 OR (1 / 0) = 1",
	} {
		prog, err := Compile(MustParse(src), compileResolver())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := prog.Eval(compileEnvRow()); err != nil {
			t.Errorf("%s: short circuit lost: %v", src, err)
		}
	}
}

// TestCompileRejectsSubqueries pins the compilation boundary: anything
// nesting a subquery falls back to the tree-walking evaluator.
func TestCompileRejectsSubqueries(t *testing.T) {
	sub := &Subquery{Text: "SELECT 1"}
	for _, e := range []Expr{
		sub,
		&Exists{Sub: sub},
		&InSubquery{X: &Literal{Val: value.NewInt(1)}, Sub: sub},
		&Binary{Op: OpAnd, L: &Literal{Val: value.NewBool(true)}, R: &Exists{Sub: sub}},
	} {
		if _, err := Compile(e, compileResolver()); err != ErrNotCompilable {
			t.Errorf("%s: Compile err = %v, want ErrNotCompilable", e.SQL(), err)
		}
	}
}

// TestCompileUnknownColumnDeferred: a dangling reference compiles but
// errors only when evaluated, matching the interpreted path over zero rows.
func TestCompileUnknownColumnDeferred(t *testing.T) {
	prog, err := Compile(MustParse("Ghost > 1"), compileResolver())
	if err != nil {
		t.Fatalf("Compile = %v, want deferred unknown-column error", err)
	}
	if _, err := prog.Eval(compileEnvRow()); err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("Eval err = %v, want unknown column", err)
	}
}
