package expr

import (
	"fmt"
	"strconv"
	"strings"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Window-function calls: fn(arg) OVER (PARTITION BY ... ORDER BY ... [ROWS
// frame]). The expression layer parses, prints, checks and fingerprints the
// node; actually computing a window needs the whole column — the SQL
// executor and the algebra's window stage lift WindowCall nodes out before
// row evaluation, so Eval/Compile reject them exactly as they reject bare
// aggregates.
//
// OVER and its clause words (PARTITION, ROWS, PRECEDING, ...) are not
// lexer keywords: they only carry meaning immediately after a call's closing
// parenthesis, so columns named "over" or "rows" keep working everywhere
// else.

// WindowOrder is one ORDER BY key of a window specification.
type WindowOrder struct {
	X    Expr
	Desc bool
}

// WindowCall is a window-function invocation.
type WindowCall struct {
	Func        relation.WindowFunc
	Arg         Expr // nil for ranking functions and COUNT(*)
	PartitionBy []Expr
	OrderBy     []WindowOrder
	Frame       *relation.Frame
}

// SQL implements Expr.
func (w *WindowCall) SQL() string {
	var b strings.Builder
	b.WriteString(string(w.Func))
	b.WriteByte('(')
	switch {
	case w.Arg != nil:
		b.WriteString(w.Arg.SQL())
	case !w.Func.Ranking():
		b.WriteByte('*')
	}
	b.WriteString(") OVER (")
	sep := ""
	if len(w.PartitionBy) > 0 {
		b.WriteString("PARTITION BY ")
		for i, e := range w.PartitionBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
		sep = " "
	}
	if len(w.OrderBy) > 0 {
		b.WriteString(sep)
		b.WriteString("ORDER BY ")
		for i, o := range w.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.X.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
		sep = " "
	}
	if w.Frame != nil {
		b.WriteString(sep)
		b.WriteString(w.Frame.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (w *WindowCall) walk(fn func(Expr)) {
	fn(w)
	if w.Arg != nil {
		w.Arg.walk(fn)
	}
	for _, e := range w.PartitionBy {
		e.walk(fn)
	}
	for _, o := range w.OrderBy {
		o.X.walk(fn)
	}
}

// IsWindowCall reports whether e is a window-function call.
func IsWindowCall(e Expr) bool {
	_, ok := e.(*WindowCall)
	return ok
}

// ContainsWindow reports whether any node in e is a window-function call.
func ContainsWindow(e Expr) bool {
	found := false
	e.walk(func(n Expr) {
		if IsWindowCall(n) {
			found = true
		}
	})
	return found
}

// batchWindow counts window computations whose input vectors came from the
// vectorized backend instead of per-row evaluation; asserted alongside the
// relation.window.* series in the metrics e2e test.
var batchWindow = obs.Default.Counter("expr.batch.window")

// NoteWindowBatch records one window evaluation with vectorized inputs.
func NoteWindowBatch() { batchWindow.Inc() }

// checkWindow infers the result kind of a window call and validates its
// shape: the function must exist, ranking functions take no argument and
// require ORDER BY, frames require ORDER BY, and every sub-expression must
// check in the row context.
func checkWindow(w *WindowCall, resolve KindResolver) (value.Kind, error) {
	if _, err := relation.ParseWindowFunc(string(w.Func)); err != nil {
		return value.KindNull, err
	}
	if w.Func.Ranking() {
		if w.Arg != nil {
			return value.KindNull, fmt.Errorf("expr: %s() takes no argument", w.Func)
		}
		if len(w.OrderBy) == 0 {
			return value.KindNull, fmt.Errorf("expr: %s requires an ORDER BY in its OVER clause", w.Func)
		}
		if w.Frame != nil {
			return value.KindNull, fmt.Errorf("expr: %s does not take a frame", w.Func)
		}
	}
	if w.Arg == nil && w.Func.NeedsArg() {
		return value.KindNull, fmt.Errorf("expr: %s window requires an argument", w.Func)
	}
	if w.Frame != nil {
		if len(w.OrderBy) == 0 {
			return value.KindNull, fmt.Errorf("expr: a window frame requires an ORDER BY")
		}
		if err := w.Frame.Validate(); err != nil {
			return value.KindNull, err
		}
	}
	argKind := value.KindNull
	if w.Arg != nil {
		if ContainsWindow(w.Arg) {
			return value.KindNull, fmt.Errorf("expr: window functions cannot nest")
		}
		k, err := Check(w.Arg, resolve)
		if err != nil {
			return value.KindNull, err
		}
		switch w.Func {
		case relation.WinSum, relation.WinAvg:
			if k != value.KindNull && !k.Numeric() {
				return value.KindNull, fmt.Errorf("expr: %s window over non-numeric %s", w.Func, k)
			}
		}
		argKind = k
	}
	for _, e := range w.PartitionBy {
		if ContainsWindow(e) {
			return value.KindNull, fmt.Errorf("expr: window functions cannot nest")
		}
		if _, err := Check(e, resolve); err != nil {
			return value.KindNull, err
		}
	}
	for _, o := range w.OrderBy {
		if ContainsWindow(o.X) {
			return value.KindNull, fmt.Errorf("expr: window functions cannot nest")
		}
		if _, err := Check(o.X, resolve); err != nil {
			return value.KindNull, err
		}
	}
	return w.Func.ResultKind(argKind), nil
}

// acceptWord consumes an identifier token spelled (case-insensitively) like
// word. OVER-clause vocabulary lexes as plain identifiers, so the window
// grammar matches them contextually instead of reserving them.
func (p *Parser) acceptWord(word string) bool {
	if t := p.Peek(); t.Kind == TokIdent && strings.EqualFold(t.Text, word) {
		p.i++
		return true
	}
	return false
}

func (p *Parser) expectWord(word string) error {
	if !p.acceptWord(word) {
		t := p.Peek()
		return fmt.Errorf("expr: expected %s at %d, found %q", word, t.Pos, t.Text)
	}
	return nil
}

// parseOverClause turns a just-parsed function call followed by OVER into a
// WindowCall. The caller consumed the OVER identifier already.
func (p *Parser) parseOverClause(fc *FuncCall) (Expr, error) {
	fn, err := relation.ParseWindowFunc(fc.Name)
	if err != nil {
		return nil, fmt.Errorf("expr: %s is not a window function", fc.Name)
	}
	w := &WindowCall{Func: fn}
	switch len(fc.Args) {
	case 0:
	case 1:
		if _, star := fc.Args[0].(*Star); !star {
			w.Arg = fc.Args[0]
		}
	default:
		return nil, fmt.Errorf("expr: %s(...) OVER takes at most one argument", fc.Name)
	}
	if err := p.ExpectOp("("); err != nil {
		return nil, err
	}
	if p.acceptWord("PARTITION") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, e)
			if !p.AcceptOp(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("ORDER") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			o := WindowOrder{X: e}
			if p.AcceptKeyword("DESC") {
				o.Desc = true
			} else {
				p.AcceptKeyword("ASC")
			}
			w.OrderBy = append(w.OrderBy, o)
			if !p.AcceptOp(",") {
				break
			}
		}
	}
	if p.acceptWord("ROWS") {
		frame, err := p.parseFrame()
		if err != nil {
			return nil, err
		}
		w.Frame = frame
	}
	if err := p.ExpectOp(")"); err != nil {
		return nil, err
	}
	return w, nil
}

// parseFrame parses the ROWS frame body: BETWEEN lo AND hi, or a single
// start bound with CURRENT ROW as the implicit end.
func (p *Parser) parseFrame() (*relation.Frame, error) {
	if p.AcceptKeyword("BETWEEN") {
		lo, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		return &relation.Frame{Lo: lo, Hi: hi}, nil
	}
	lo, err := p.parseFrameBound()
	if err != nil {
		return nil, err
	}
	return &relation.Frame{Lo: lo, Hi: relation.FrameBound{Kind: relation.BoundCurrentRow}}, nil
}

func (p *Parser) parseFrameBound() (relation.FrameBound, error) {
	var b relation.FrameBound
	switch {
	case p.acceptWord("UNBOUNDED"):
		switch {
		case p.acceptWord("PRECEDING"):
			b.Kind = relation.BoundUnboundedPreceding
		case p.acceptWord("FOLLOWING"):
			b.Kind = relation.BoundUnboundedFollowing
		default:
			t := p.Peek()
			return b, fmt.Errorf("expr: expected PRECEDING or FOLLOWING at %d, found %q", t.Pos, t.Text)
		}
		return b, nil
	case p.acceptWord("CURRENT"):
		if err := p.expectWord("ROW"); err != nil {
			return b, err
		}
		b.Kind = relation.BoundCurrentRow
		return b, nil
	}
	t := p.Peek()
	if t.Kind != TokNumber || strings.ContainsAny(t.Text, ".eE") {
		return b, fmt.Errorf("expr: expected a frame bound at %d, found %q", t.Pos, t.Text)
	}
	p.i++
	off, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return b, fmt.Errorf("expr: bad frame offset %q at %d", t.Text, t.Pos)
	}
	b.Offset = off
	switch {
	case p.acceptWord("PRECEDING"):
		b.Kind = relation.BoundPreceding
	case p.acceptWord("FOLLOWING"):
		b.Kind = relation.BoundFollowing
	default:
		t := p.Peek()
		return b, fmt.Errorf("expr: expected PRECEDING or FOLLOWING at %d, found %q", t.Pos, t.Text)
	}
	return b, nil
}
