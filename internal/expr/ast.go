// Package expr implements the expression language shared by the spreadsheet
// algebra and the SQL engine: selection predicates (Sec. III-B Def. 5 of the
// paper — atomic comparisons over columns and constants with optional
// arithmetic, combined with AND/OR/NOT) and formula-computation expressions
// (Def. 12).
//
// The package provides a lexer, a precedence-climbing parser, a type
// checker, a row evaluator with SQL three-valued NULL logic, and utilities
// to enumerate referenced columns and to render an expression back to SQL
// text (used by internal/sqlgen).
package expr

import (
	"strings"

	"sheetmusiq/internal/value"
)

// Expr is a parsed expression tree node.
type Expr interface {
	// SQL renders the node as SQL text that reparses to an equal tree.
	SQL() string
	// walk visits this node then its children.
	walk(fn func(Expr))
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

// SQL implements Expr.
func (l *Literal) SQL() string { return l.Val.SQL() }

func (l *Literal) walk(fn func(Expr)) { fn(l) }

// ColumnRef references a column by name. Names may be dotted
// ("orders.o_custkey") after binary operators disambiguate collisions.
type ColumnRef struct {
	Name string
}

// SQL implements Expr. Names that need quoting are double-quoted.
func (c *ColumnRef) SQL() string {
	if needsQuote(c.Name) {
		return `"` + strings.ReplaceAll(c.Name, `"`, `""`) + `"`
	}
	return c.Name
}

func (c *ColumnRef) walk(fn func(Expr)) { fn(c) }

func needsQuote(name string) bool {
	if name == "" {
		return true
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return true
			}
		default:
			return true
		}
	}
	return keyword(strings.ToUpper(name))
}

// Star is the "*" argument of COUNT(*) in SQL contexts. The algebra's own
// evaluator rejects it; only the SQL layer interprets it.
type Star struct{}

// SQL implements Expr.
func (*Star) SQL() string { return "*" }

func (s *Star) walk(fn func(Expr)) { fn(s) }

// BinaryOp enumerates binary operators.
type BinaryOp string

// Binary operators in increasing precedence groups.
const (
	OpOr     BinaryOp = "OR"
	OpAnd    BinaryOp = "AND"
	OpEq     BinaryOp = "="
	OpNe     BinaryOp = "<>"
	OpLt     BinaryOp = "<"
	OpLe     BinaryOp = "<="
	OpGt     BinaryOp = ">"
	OpGe     BinaryOp = ">="
	OpLike   BinaryOp = "LIKE"
	OpAdd    BinaryOp = "+"
	OpSub    BinaryOp = "-"
	OpMul    BinaryOp = "*"
	OpDiv    BinaryOp = "/"
	OpMod    BinaryOp = "%"
	OpConcat BinaryOp = "||"
)

// Binary applies a binary operator.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// SQL implements Expr.
func (b *Binary) SQL() string {
	return "(" + b.L.SQL() + " " + string(b.Op) + " " + b.R.SQL() + ")"
}

func (b *Binary) walk(fn func(Expr)) { fn(b); b.L.walk(fn); b.R.walk(fn) }

// UnaryOp enumerates unary operators.
type UnaryOp string

// Unary operators.
const (
	OpNot UnaryOp = "NOT"
	OpNeg UnaryOp = "-"
)

// Unary applies a unary operator.
type Unary struct {
	Op UnaryOp
	X  Expr
}

// SQL implements Expr.
func (u *Unary) SQL() string {
	if u.Op == OpNot {
		return "(NOT " + u.X.SQL() + ")"
	}
	return "(-" + u.X.SQL() + ")"
}

func (u *Unary) walk(fn func(Expr)) { fn(u); u.X.walk(fn) }

// IsNull tests X IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// SQL implements Expr.
func (n *IsNull) SQL() string {
	if n.Negate {
		return "(" + n.X.SQL() + " IS NOT NULL)"
	}
	return "(" + n.X.SQL() + " IS NULL)"
}

func (n *IsNull) walk(fn func(Expr)) { fn(n); n.X.walk(fn) }

// InList tests X [NOT] IN (item, ...).
type InList struct {
	X      Expr
	Items  []Expr
	Negate bool
}

// SQL implements Expr.
func (n *InList) SQL() string {
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.SQL()
	}
	op := " IN ("
	if n.Negate {
		op = " NOT IN ("
	}
	return "(" + n.X.SQL() + op + strings.Join(parts, ", ") + "))"
}

func (n *InList) walk(fn func(Expr)) {
	fn(n)
	n.X.walk(fn)
	for _, it := range n.Items {
		it.walk(fn)
	}
}

// Between tests X [NOT] BETWEEN Lo AND Hi (inclusive).
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

// SQL implements Expr.
func (n *Between) SQL() string {
	op := " BETWEEN "
	if n.Negate {
		op = " NOT BETWEEN "
	}
	return "(" + n.X.SQL() + op + n.Lo.SQL() + " AND " + n.Hi.SQL() + ")"
}

func (n *Between) walk(fn func(Expr)) { fn(n); n.X.walk(fn); n.Lo.walk(fn); n.Hi.walk(fn) }

// FuncCall invokes a scalar function (or, in SQL SELECT lists, an aggregate
// such as SUM — the SQL planner peels those off before evaluation).
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
}

// SQL implements Expr.
func (f *FuncCall) SQL() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (f *FuncCall) walk(fn func(Expr)) {
	fn(f)
	for _, a := range f.Args {
		a.walk(fn)
	}
}

// Columns returns the distinct column names referenced by e, in first-use
// order.
func Columns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	e.walk(func(n Expr) {
		if c, ok := n.(*ColumnRef); ok {
			k := strings.ToLower(c.Name)
			if !seen[k] {
				seen[k] = true
				out = append(out, c.Name)
			}
		}
	})
	return out
}

// Walk visits every node of e in pre-order.
func Walk(e Expr, fn func(Expr)) { e.walk(fn) }

// References reports whether e mentions the named column
// (case-insensitively).
func References(e Expr, column string) bool {
	found := false
	e.walk(func(n Expr) {
		if c, ok := n.(*ColumnRef); ok && strings.EqualFold(c.Name, column) {
			found = true
		}
	})
	return found
}
